// Command dronet-serve exposes one or several detectors as the HTTP
// micro-batching service (internal/serve): concurrent requests are admitted
// through bounded per-model queues (429 on overload) and coalesced into
// dynamic micro-batches executed on each model's engine replica pool.
//
// Usage:
//
//	dronet-serve -addr :8080 -model dronet -size 128 -scale 0.5 \
//	    -weights dronet.weights -workers 4 -max-batch 8 -max-wait 2ms
//
// The engine is precision-agnostic (core.Model): -precision int8 serves the
// INT8-quantized model (batch-norm folding, per-channel weight scales,
// activation scales calibrated at startup on synthetic sample frames)
// through exactly the same admission queue and batcher as fp32, and
// /healthz, /metrics label the active precision.
//
// With -models the server hosts a routed registry of models instead of one:
//
//	dronet-serve -addr :8080 -models "low=dronet:96:int8:150,high=dronet:128:fp32"
//
// Each comma-separated entry is name=model:size:precision[:maxalt][:weight];
// the first entry is the default route. Requests pick a model explicitly
// with ?model= or the X-Model header; otherwise a request carrying an
// altitude is routed to the model whose maxalt band covers it (the paper's
// operating-scenario trade-off: low flight ⇒ large targets ⇒ the small
// fast model; high flight ⇒ the larger-input one). The optional weight is
// the pool's fair share of borrowed workers under idle-worker lending.
// /healthz and /metrics carry per-model labelled blocks plus fleet
// aggregates.
//
// With -admin HOST:PORT a second, operations-only listener exposes the
// live model lifecycle (GET/POST /admin/models, PUT/DELETE
// /admin/models/{name}): models can be added, weight-swapped and removed
// under traffic with zero dropped requests — new pools are built off the
// request path and the routing table flips atomically. Keep this listener
// on loopback or an ops network; it is deliberately not part of the data
// plane handler.
//
// With -shard-id the server stamps that identity (plus its bound address)
// on /healthz and /metrics so a fronting dronet-proxy — and anyone scraping
// shards directly — can attribute fleet metrics to the right process.
//
// The server prints "listening on HOST:PORT" once the socket is bound (so
// -addr 127.0.0.1:0 picks a free port scripts can parse; with -admin the
// second line is "admin listening on HOST:PORT") and drains in-flight
// requests on SIGINT/SIGTERM across every model's pool.
//
// With -selfbench the command instead boots the server in-process — once
// per precision — drives each with the same concurrent synthetic clients,
// and writes the machine-readable throughput report (serve.Stats for fp32
// and int8 side by side, plus their detection-agreement score on the same
// inputs) to -bench-out — this is what `make bench` uses to emit
// BENCH_serve.json. When -models is also given, a routed server hosting
// every registered model is benchmarked too, adding per-model serve.Stats
// under "routed".
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/imgproc"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/tracking"
	"repro/internal/ws"
)

// agreementIoU is the overlap bar for counting an fp32 and an int8 detection
// as the same object in the selfbench agreement score.
const agreementIoU = 0.9

func main() {
	log.SetFlags(0)
	log.SetPrefix("dronet-serve: ")
	addr := flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
	adminAddr := flag.String("admin", "", "admin listen address for the model-lifecycle endpoints (disabled when empty; keep on loopback)")
	model := flag.String("model", models.DroNet, "model name")
	size := flag.Int("size", 128, "network input resolution")
	scale := flag.Float64("scale", 0.5, "filter-count scale (1.0 = paper-size model)")
	weightsPath := flag.String("weights", "", "trained weights file (random init when empty)")
	precision := flag.String("precision", "fp32", "inference precision: fp32 or int8 (post-training quantized)")
	modelsFlag := flag.String("models", "", `routed multi-model registry: "name=model:size:precision[:maxalt][:weight][:degrade=sibling],..." (first entry is the default route; overrides -model/-size/-precision)`)
	calibFrames := flag.Int("calib-frames", 8, "int8: synthetic sample frames for activation-scale calibration")
	workers := flag.Int("workers", runtime.NumCPU(), "batch worker pool size (model replicas)")
	maxBatch := flag.Int("max-batch", 8, "maximum images per micro-batch")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "maximum wait for a batch to fill")
	minWait := flag.Duration("min-wait", 300*time.Microsecond, "batch accumulation floor: a non-full batch is never dispatched earlier")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 8*max-batch); full queue returns 429")
	shardID := flag.String("shard-id", "", "fleet identity label stamped on /healthz and /metrics (for sharded deployments behind dronet-proxy)")
	maxSessions := flag.Int("max-sessions", 64, "streaming: maximum concurrently open /stream sessions (beyond it new opens get 503 + Retry-After)")
	sessionIdle := flag.Duration("session-idle", 60*time.Second, "streaming: idle timeout before a quiet session is evicted with a bye")
	sessionInflight := flag.Int("session-inflight", 4, "streaming: per-session bound on buffered frames before backpressure (reject or drop-oldest)")
	thresh := flag.Float64("thresh", 0.24, "detection confidence threshold")
	altFilter := flag.Bool("altfilter", false, "apply the altitude size gate when requests carry an altitude")
	selfbench := flag.Bool("selfbench", false, "run the fp32-vs-int8 serving benchmark instead of serving")
	benchOut := flag.String("bench-out", "BENCH_serve.json", "selfbench: output path for the JSON report")
	benchClients := flag.Int("bench-clients", 8, "selfbench: concurrent synthetic clients")
	benchRequests := flag.Int("bench-requests", 40, "selfbench: requests per client")
	cpuProfile := flag.String("cpuprofile", "", "selfbench: write a CPU pprof profile of the whole run to this path")
	memProfile := flag.String("memprofile", "", "selfbench: write a heap pprof profile at the end of the run to this path")
	kernelPin := flag.String("kernel", "", "pin the GEMM microkernel family (one of "+strings.Join(tensor.AvailableKernels(), ", ")+"; default: auto-detect, env "+tensor.KernelEnv+")")
	faultsFlag := flag.String("faults", "", `fault-injection spec "site[#key]=kind[:arg],..." (internal/faults; chaos testing only — also honours DRONET_FAULTS)`)
	flag.Parse()

	if *faultsFlag != "" {
		if err := faults.Arm(*faultsFlag); err != nil {
			log.Fatal(err)
		}
		log.Printf("warning: fault injection armed: %s", *faultsFlag)
	}

	if *kernelPin != "" {
		if err := tensor.SelectKernel(*kernelPin); err != nil {
			log.Fatal(err)
		}
	} else if note := tensor.KernelInitNote(); note != "" {
		log.Printf("warning: %s", note)
	}
	log.Printf("gemm kernel: %s (available: %s)", tensor.KernelName(), strings.Join(tensor.AvailableKernels(), ", "))

	if *precision != "fp32" && *precision != "int8" {
		log.Fatalf("unknown -precision %q (want fp32 or int8)", *precision)
	}
	var specs []serve.ModelSpec
	if *modelsFlag != "" {
		if *weightsPath != "" {
			log.Fatal("-weights is single-model only and incompatible with -models")
		}
		var err error
		specs, err = serve.ParseModelSpecs(*modelsFlag)
		if err != nil {
			log.Fatal(err)
		}
	}

	// NMSThresh is deliberately left zero here: every serving path fills it
	// from its detector (buildEntries / the single-model branch / selfbench),
	// so a path that forgot would surface as the runners' zero-value default
	// rather than masquerading as a deliberate constant.
	cfg := engine.Config{Workers: *workers, Thresh: *thresh}
	if *altFilter {
		gate := detect.NewVehicleAltitudeFilter()
		cfg.AltitudeFilter = &gate
	}
	scfg := serve.Config{
		MaxBatch:   *maxBatch,
		MaxWait:    *maxWait,
		MinWait:    *minWait,
		QueueDepth: *queueDepth,
		Warm:       true,
	}

	if *selfbench {
		det, err := buildDetector(*model, *size, *scale, *weightsPath)
		if err != nil {
			log.Fatal(err)
		}
		stopProf, err := startProfiles(*cpuProfile, *memProfile)
		if err != nil {
			log.Fatal(err)
		}
		err = runSelfBench(det, cfg, scfg, *size, *calibFrames, *benchClients, *benchRequests, *benchOut, *model, *scale, specs)
		if perr := stopProf(); err == nil {
			err = perr
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	// builder backs the admin endpoints: specs posted at runtime are built
	// with the same command-level scale, calibration budget and engine/batch
	// knobs as the startup -models entries, off the serving path.
	builder := func(spec serve.ModelSpec) (serve.ModelEntry, error) {
		return buildEntry(spec, *scale, *calibFrames, cfg, scfg)
	}

	var srv *serve.Server
	if specs != nil {
		entries, err := buildEntries(specs, *scale, *calibFrames, cfg, scfg)
		if err != nil {
			log.Fatal(err)
		}
		srv, err = serve.NewRouted(entries)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		det, err := buildDetector(*model, *size, *scale, *weightsPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.NMSThresh = det.NMSThresh
		mdl, err := buildModel(det, *precision, *size, *calibFrames)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := engine.New(mdl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		scfg.Precision = *precision
		srv, err = serve.New(eng, scfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	srv.SetModelBuilder(builder)
	srv.ConfigureStreams(serve.StreamConfig{
		MaxSessions: *maxSessions,
		IdleTimeout: *sessionIdle,
		MaxInflight: *sessionInflight,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *shardID != "" {
		srv.SetIdentity(*shardID, ln.Addr().String())
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	var adminHTTP *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("admin listening on %s\n", aln.Addr())
		adminHTTP = &http.Server{Handler: srv.AdminHandler()}
		go func() {
			if err := adminHTTP.Serve(aln); err != nil && err != http.ErrServerClosed {
				log.Printf("admin: %v", err)
			}
		}()
	}
	if specs != nil {
		log.Printf("routed models %v (default %s), %d workers per pool, max-batch %d, max-wait %s",
			srv.Models(), srv.Models()[0], *workers, *maxBatch, *maxWait)
	} else {
		log.Printf("model %s size %d scale %.2f precision %s, %d workers, max-batch %d, max-wait %s, queue %d",
			*model, *size, *scale, *precision, *workers, *maxBatch, *maxWait, srv.Stats().QueueCap)
	}

	httpSrv := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%s: draining", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if adminHTTP != nil {
		// Stop lifecycle mutations before draining the data plane, so the
		// drain isn't racing an in-flight swap's pool churn.
		if err := adminHTTP.Shutdown(ctx); err != nil {
			log.Printf("admin shutdown: %v", err)
		}
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	log.Printf("final stats: %+v", srv.Stats())
}

// buildDetector constructs the scaled detector and loads weights when a
// path was given (random init with a warning otherwise).
func buildDetector(model string, size int, scale float64, weightsPath string) (*core.Detector, error) {
	det, err := core.NewScaledDetector(model, size, scale, 1)
	if err != nil {
		return nil, err
	}
	if weightsPath != "" {
		if err := det.LoadWeights(weightsPath); err != nil {
			return nil, err
		}
	} else {
		log.Print("warning: no -weights given, using random initialization")
	}
	return det, nil
}

// buildEntry turns one parsed model spec into a hosted entry: a scaled
// detector (quantized when the spec says int8), an engine replica pool and
// a batching config. The pool inherits the command-level worker count and
// batching knobs; precision, input size, altitude band and lending weight
// come from the spec. This is also the admin endpoints' ModelBuilder, so
// hot-added and hot-swapped models are constructed exactly like startup
// ones.
func buildEntry(spec serve.ModelSpec, scale float64, calibFrames int, cfg engine.Config, scfg serve.Config) (serve.ModelEntry, error) {
	det, err := core.NewScaledDetector(spec.Model, spec.Size, scale, 1)
	if err != nil {
		return serve.ModelEntry{}, fmt.Errorf("model %s: %w", spec.Name, err)
	}
	mdl, err := buildModel(det, spec.Precision, spec.Size, calibFrames)
	if err != nil {
		return serve.ModelEntry{}, fmt.Errorf("model %s: %w", spec.Name, err)
	}
	ecfg := cfg
	ecfg.NMSThresh = det.NMSThresh
	eng, err := engine.New(mdl, ecfg)
	if err != nil {
		return serve.ModelEntry{}, fmt.Errorf("model %s: %w", spec.Name, err)
	}
	mcfg := scfg
	mcfg.Precision = spec.Precision
	degradeLabel := ""
	if spec.Degrade != "" {
		degradeLabel = ", degrades to " + spec.Degrade
	}
	log.Printf("registered %s (input %dx%d, %s%s%s%s)", spec.Name, spec.Size, spec.Size, spec.Precision,
		altLabel(spec.MaxAltitude), weightLabel(spec.Weight), degradeLabel)
	return serve.ModelEntry{
		Name:        spec.Name,
		Engine:      eng,
		Config:      mcfg,
		MaxAltitude: spec.MaxAltitude,
		Weight:      spec.Weight,
		Degrade:     spec.Degrade,
	}, nil
}

// buildEntries maps buildEntry over every startup -models spec.
func buildEntries(specs []serve.ModelSpec, scale float64, calibFrames int, cfg engine.Config, scfg serve.Config) ([]serve.ModelEntry, error) {
	entries := make([]serve.ModelEntry, 0, len(specs))
	for _, spec := range specs {
		e, err := buildEntry(spec, scale, calibFrames, cfg, scfg)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func altLabel(maxAlt float64) string {
	if maxAlt <= 0 {
		return ""
	}
	return fmt.Sprintf(", altitude <= %gm", maxAlt)
}

func weightLabel(w float64) string {
	if w == 0 || w == 1 {
		return ""
	}
	return fmt.Sprintf(", weight %g", w)
}

// buildModel returns the inference model for the requested precision. For
// int8 it quantizes the detector post-training, calibrating the per-layer
// activation scales on synthetic sample frames rendered at the network's
// input size — the startup-time stand-in for a deployment's recorded sample
// traffic.
func buildModel(det *core.Detector, precision string, size, calibFrames int) (core.Model, error) {
	if precision != "int8" {
		return det.Model(), nil
	}
	if calibFrames < 1 {
		calibFrames = 1
	}
	cam := pipeline.NewSimCamera(dataset.DefaultConfig(size), calibFrames, 7)
	var calib []*tensor.Tensor
	for {
		f, ok := cam.Next()
		if !ok {
			break
		}
		calib = append(calib, f.Image.ToTensor())
	}
	start := time.Now()
	mdl, err := det.QuantizeINT8(calib)
	if err != nil {
		return nil, err
	}
	log.Printf("int8: calibrated on %d frames in %s, weights %d bytes (fp32 %d)",
		len(calib), time.Since(start).Round(time.Millisecond), mdl.WeightBytes(), det.Model().WeightBytes())
	return mdl, nil
}

// startProfiles begins CPU profiling (when cpuPath is set) and returns a
// stop function that finishes the CPU profile and snapshots the heap (when
// memPath is set). `make profile` drives this to fill bin/pprof/.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		return func() error {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				return err
			}
			return writeHeapProfile(memPath)
		}, nil
	}
	return func() error { return writeHeapProfile(memPath) }, nil
}

func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // report live steady-state heap, not transient garbage
	return pprof.WriteHeapProfile(f)
}

// kernelStat is one GEMM-shape measurement in the selfbench report: the
// packed cache-blocked kernels' throughput at a representative DroNet
// convolution shape, fp32 (GFLOP/s) and int8 (GOP/s, 2 ops per MAC).
// Kernel labels which dispatched microkernel family produced the numbers,
// and the *_prepacked_* variants time the steady-state serving path where
// the weight-side operand was packed once up front (GemmPrepacked /
// GemmInt8Prepacked) instead of on every call.
type kernelStat struct {
	Shape         string  `json:"shape"`
	Kernel        string  `json:"kernel"`
	FP32GFLOPS    float64 `json:"fp32_gflops"`
	FP32PreGFLOPS float64 `json:"fp32_prepacked_gflops"`
	Int8GOPS      float64 `json:"int8_gops"`
	Int8PreGOPS   float64 `json:"int8_prepacked_gops"`
}

// benchKernels measures the raw GEMM kernels at three representative DroNet
// conv shapes (the same ones BenchmarkGemm tracks), ~0.2s each, so
// BENCH_serve.json records kernel-level throughput next to the end-to-end
// serving numbers.
func benchKernels() []kernelStat {
	shapes := []struct {
		name    string
		m, n, k int
	}{
		{"dronet-conv2@512 m12 n65536 k72", 12, 65536, 72},
		{"tinyyolo-conv7@512 m1024 n256 k4608", 1024, 256, 4608},
		{"dronet-conv8@512 m64 n1024 k216", 64, 1024, 216},
	}
	stats := make([]kernelStat, 0, len(shapes))
	for _, s := range shapes {
		rng := tensor.NewRNG(1)
		a := make([]float32, s.m*s.k)
		b := make([]float32, s.k*s.n)
		c := make([]float32, s.m*s.n)
		rng.FillUniform(a, -1, 1)
		rng.FillUniform(b, -1, 1)
		qa := make([]int8, len(a))
		qb := make([]int8, len(b))
		for i, v := range a {
			qa[i] = int8(v * 127)
		}
		for i, v := range b {
			qb[i] = int8(v * 127)
		}
		requant := make([]float32, s.m)
		bias := make([]float32, s.m)
		for i := range requant {
			requant[i] = 1.0 / 127
		}
		ops := 2 * float64(s.m) * float64(s.n) * float64(s.k)
		st := kernelStat{Shape: s.name, Kernel: tensor.KernelName()}
		st.FP32GFLOPS = ops * measureRate(func() {
			tensor.Gemm(false, false, s.m, s.n, s.k, 1, a, s.k, b, s.n, 0, c, s.n)
		}) / 1e9
		st.Int8GOPS = ops * measureRate(func() {
			tensor.GemmInt8(s.m, s.n, s.k, qa, s.k, qb, s.n, requant, bias, c, s.n)
		}) / 1e9
		pre := tensor.PackA(false, s.m, s.k, 1, a, s.k)
		st.FP32PreGFLOPS = ops * measureRate(func() {
			tensor.GemmPrepacked(pre, false, s.n, b, s.n, 0, c, s.n)
		}) / 1e9
		preI8 := tensor.PackAInt8(s.m, s.k, qa, s.k)
		st.Int8PreGOPS = ops * measureRate(func() {
			tensor.GemmInt8Prepacked(preI8, s.n, qb, s.n, requant, bias, c, s.n)
		}) / 1e9
		stats = append(stats, st)
	}
	return stats
}

// measureRate returns calls-per-second of fn, warmed once and then timed
// for at least 200ms.
func measureRate(fn func()) float64 {
	fn() // warm: pack-slab growth, pool priming
	var calls int
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond {
		fn()
		calls++
	}
	return float64(calls) / time.Since(start).Seconds()
}

// benchReport is the schema of BENCH_serve.json: the run parameters plus the
// serving metrics snapshots of the fp32 and int8 runs, their
// detection-agreement score on the identical request stream, and the raw
// kernel throughput of the packed GEMMs.
type benchReport struct {
	Model    string       `json:"model"`
	Scale    float64      `json:"scale"`
	Size     int          `json:"size"`
	Clients  int          `json:"clients"`
	Requests int          `json:"requests_per_client"`
	Kernels  []kernelStat `json:"kernels"`
	FP32     serve.Stats  `json:"fp32"`
	Int8     serve.Stats  `json:"int8"`
	// DetectionAgreement is 2*matches/(fp32_dets+int8_dets) over every
	// benchmark image, where a match is a same-class pair with
	// IoU >= AgreementIoU — 1.0 means the quantized path reproduced every
	// fp32 detection.
	DetectionAgreement float64 `json:"detection_agreement"`
	AgreementIoU       float64 `json:"agreement_iou"`
	// RoutedSpec and Routed report the multi-model leg when -models was
	// given: one routed server hosting every spec at once, each model driven
	// by its own client fleet, snapshotted per model.
	RoutedSpec string                 `json:"routed_spec,omitempty"`
	Routed     map[string]serve.Stats `json:"routed,omitempty"`
	// Resilience reports the deadline-chaos leg: a fault-injected slow
	// kernel plus a storm of under-budget deadlines, proving the shed path
	// (504s, not late 200s) and the kernel-accounting identity under load.
	Resilience *resilienceStat `json:"resilience,omitempty"`
	// Streaming reports the session leg: concurrent WebSocket sessions
	// pipelining frames through the shared batcher with per-session
	// tracker state, scored against a serial tracking replay.
	Streaming *streamingStat `json:"streaming,omitempty"`
}

// resilienceStat is the selfbench resilience block: outcomes of a
// deadline storm against a server with an injected 20ms kernel slowdown.
type resilienceStat struct {
	StormRequests         int    `json:"storm_requests"`
	Deadline504           int    `json:"deadline_504"`
	LatePastDeadline200   int    `json:"late_past_deadline_200"`
	DeadlineExceededTotal uint64 `json:"deadline_exceeded_total"`
	ExecutedImages        uint64 `json:"executed_images"`
	CompletedPlusFailed   uint64 `json:"completed_plus_failed"`
	// AccountingHolds is executed == completed+failed: dropped-expired
	// work never reached a kernel.
	AccountingHolds bool `json:"accounting_holds"`
}

// benchResilience boots one fp32 server with a fault-injected 20ms kernel
// slowdown, warms the service-time estimate, then fires a storm of
// requests carrying 5ms budgets and tallies how the server shed them.
func benchResilience(det *core.Detector, cfg engine.Config, scfg serve.Config, size, calibFrames int) (*resilienceStat, error) {
	if err := faults.Arm("engine.execute=slow:20ms"); err != nil {
		return nil, err
	}
	defer faults.Disarm()
	mdl, err := buildModel(det, "fp32", size, calibFrames)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(mdl, cfg)
	if err != nil {
		return nil, err
	}
	scfg.Precision = "fp32"
	srv, err := serve.New(eng, scfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	url := fmt.Sprintf("http://%s/detect", ln.Addr())

	cam := pipeline.NewSimCamera(dataset.DefaultConfig(size), 1, 300)
	frame, _ := cam.Next()
	body, err := json.Marshal(serve.DetectRequest{Width: frame.Image.W, Height: frame.Image.H, Pixels: frame.Image.Pix})
	if err != nil {
		return nil, err
	}
	post := func(budgetMs int) (int, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if budgetMs > 0 {
			req.Header.Set(serve.DeadlineHeader, fmt.Sprint(budgetMs))
		}
		resp, err := benchClient.Do(req)
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	// Warm the engine's observed service time so the batcher can price
	// the storm's budgets.
	for i := 0; i < 3; i++ {
		if _, err := post(0); err != nil {
			return nil, err
		}
	}
	st := &resilienceStat{StormRequests: 16}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < st.StormRequests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, err := post(5)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				// Counted as neither: the report's totals expose the gap.
			case code == http.StatusGatewayTimeout:
				st.Deadline504++
			case code == http.StatusOK:
				st.LatePastDeadline200++
			}
		}()
	}
	wg.Wait()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	if err := srv.Close(); err != nil {
		return nil, err
	}
	stats := srv.Stats()
	st.DeadlineExceededTotal = stats.DeadlineExceededTotal
	for k, v := range stats.BatchHist {
		st.ExecutedImages += uint64(k) * uint64(v)
	}
	st.CompletedPlusFailed = stats.Completed + stats.Failed
	st.AccountingHolds = st.ExecutedImages == st.CompletedPlusFailed
	return st, nil
}

// streamingStat is the selfbench streaming block: a fleet of concurrent
// /stream sessions pipelining frames through the shared cross-session
// batcher, each scored against a serial tracking replay of its own
// returned detections.
type streamingStat struct {
	Sessions         int     `json:"sessions"`
	FramesPerSession int     `json:"frames_per_session"`
	FramesPerSecond  float64 `json:"frames_per_second"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
	// TrackIDStability is the fraction of frame answers whose full track
	// set (ids, boxes, velocities, ages) matched a fresh tracker replayed
	// serially over that session's detections — 1.0 means concurrent
	// sessions never leaked tracker state into each other.
	TrackIDStability  float64 `json:"track_id_stability"`
	TracksRetired     uint64  `json:"tracks_retired"`
	StreamFramesTotal uint64  `json:"stream_frames_total"`
}

// benchStreaming boots one fp32 server, opens a fleet of WebSocket
// sessions (each its own simulated camera, so tracks actually move), and
// streams every session's frames fully pipelined. Frames from different
// sessions coalesce into shared micro-batches; per-session track identity
// is then verified by replaying each session's detections through a fresh
// serial tracker and comparing the track sets frame by frame.
func benchStreaming(det *core.Detector, cfg engine.Config, scfg serve.Config, size, calibFrames int) (*streamingStat, error) {
	const sessions, perSession = 8, 24
	mdl, err := buildModel(det, "fp32", size, calibFrames)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(mdl, cfg)
	if err != nil {
		return nil, err
	}
	scfg.Precision = "fp32"
	srv, err := serve.New(eng, scfg)
	if err != nil {
		return nil, err
	}
	// Inflight = perSession: the bench pipelines a whole session's frames
	// at once and must measure batching, not backpressure.
	srv.ConfigureStreams(serve.StreamConfig{MaxSessions: sessions, MaxInflight: perSession})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	addr := ln.Addr().String()

	frames := make([][]*imgproc.Image, sessions)
	for c := range frames {
		cam := pipeline.NewSimCamera(dataset.DefaultConfig(size), perSession, uint64(500+c))
		for {
			f, ok := cam.Next()
			if !ok {
				break
			}
			frames[c] = append(frames[c], f.Image)
		}
	}

	results := make([][]serve.StreamMessage, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = func() error {
				conn, err := ws.Dial(addr, fmt.Sprintf("/stream?camera=bench%d", c), nil, 5*time.Second)
				if err != nil {
					return err
				}
				defer conn.Close()
				raw, err := conn.ReadMessage()
				if err != nil {
					return fmt.Errorf("hello: %w", err)
				}
				var hello serve.StreamMessage
				if err := json.Unmarshal(raw, &hello); err != nil || hello.Type != serve.MsgHello {
					return fmt.Errorf("bad hello %q: %v", raw, err)
				}
				for i, img := range frames[c] {
					body, err := json.Marshal(serve.StreamFrame{Seq: i + 1, Width: img.W, Height: img.H, Pixels: img.Pix})
					if err != nil {
						return err
					}
					if err := conn.WriteMessage(body); err != nil {
						return fmt.Errorf("frame %d: %w", i+1, err)
					}
				}
				for len(results[c]) < len(frames[c]) {
					raw, err := conn.ReadMessage()
					if err != nil {
						return fmt.Errorf("result %d: %w", len(results[c])+1, err)
					}
					var msg serve.StreamMessage
					if err := json.Unmarshal(raw, &msg); err != nil {
						return err
					}
					if msg.Type != serve.MsgResult {
						return fmt.Errorf("answer %d: type %q (err %q)", len(results[c])+1, msg.Type, msg.Error)
					}
					results[c] = append(results[c], msg)
				}
				if err := conn.WriteClose(1000, "bench done"); err != nil {
					return err
				}
				for {
					if _, err := conn.ReadMessage(); err != nil {
						return nil
					}
				}
			}()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", c, err)
		}
	}

	st := &streamingStat{
		Sessions:         sessions,
		FramesPerSession: perSession,
		FramesPerSecond:  float64(sessions*perSession) / elapsed.Seconds(),
	}
	matched, total := 0, 0
	for c := range results {
		oracle := tracking.New(tracking.Config{})
		for _, msg := range results[c] {
			dets := make([]detect.Detection, len(msg.Detections))
			for i, d := range msg.Detections {
				dets[i] = detect.Detection{Box: detect.Box{X: d.X, Y: d.Y, W: d.W, H: d.H}, Class: d.Class, Score: d.Score}
			}
			var want []serve.TrackJSON
			for _, tr := range oracle.Update(dets) {
				want = append(want, serve.TrackJSON{
					ID: tr.ID, X: tr.Box.X, Y: tr.Box.Y, W: tr.Box.W, H: tr.Box.H,
					Class: tr.Class, Score: tr.Score, VX: tr.VX, VY: tr.VY,
					Hits: tr.Hits, Age: tr.LastFrame - tr.FirstFrame,
				})
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				return nil, err
			}
			gotJSON, err := json.Marshal(msg.Tracks)
			if err != nil {
				return nil, err
			}
			total++
			if bytes.Equal(wantJSON, gotJSON) {
				matched++
			}
		}
	}
	if total > 0 {
		st.TrackIDStability = float64(matched) / float64(total)
	}

	if err := srv.Close(); err != nil {
		return nil, err
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	stats := srv.Stats()
	st.MeanBatchSize = stats.MeanBatchSize
	st.TracksRetired = stats.StreamTracksRetired
	st.StreamFramesTotal = stats.StreamFramesTotal
	return st, nil
}

// runSelfBench boots the server on a loopback port once per precision,
// drives both with the same pre-rendered frames over real HTTP (the path
// production traffic takes), and writes the side-by-side report. With
// -models it additionally benchmarks one routed server hosting every
// registered model at once.
func runSelfBench(det *core.Detector, cfg engine.Config, scfg serve.Config, size, calibFrames, clients, requests int, outPath, model string, scale float64, specs []serve.ModelSpec) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("selfbench: need clients >= 1 and requests >= 1")
	}
	cfg.NMSThresh = det.NMSThresh
	// Pre-render each client's frames so generation cost stays off the clock.
	frames := make([][]*imgproc.Image, clients)
	for c := range frames {
		cam := pipeline.NewSimCamera(dataset.DefaultConfig(size), requests, uint64(100+c))
		for {
			f, ok := cam.Next()
			if !ok {
				break
			}
			frames[c] = append(frames[c], f.Image)
		}
	}
	rep := benchReport{Model: model, Scale: scale, Size: size, Clients: clients, Requests: requests, AgreementIoU: agreementIoU}
	rep.Kernels = benchKernels()
	for _, ks := range rep.Kernels {
		log.Printf("selfbench kernel[%s] %s: fp32 %.2f GFLOP/s (prepacked %.2f), int8 %.2f GOP/s (prepacked %.2f)",
			ks.Kernel, ks.Shape, ks.FP32GFLOPS, ks.FP32PreGFLOPS, ks.Int8GOPS, ks.Int8PreGOPS)
	}
	dets := make(map[string][][]detect.Detection, 2)
	for _, precision := range []string{"fp32", "int8"} {
		mdl, err := buildModel(det, precision, size, calibFrames)
		if err != nil {
			return err
		}
		stats, collected, err := benchOnePrecision(mdl, cfg, scfg, precision, frames)
		if err != nil {
			return fmt.Errorf("selfbench %s: %w", precision, err)
		}
		dets[precision] = collected
		if precision == "fp32" {
			rep.FP32 = stats
		} else {
			rep.Int8 = stats
		}
		log.Printf("selfbench %s: %.1f images/s aggregate, mean batch %.2f, p50 %.1f ms, p99 %.1f ms",
			precision, stats.AggregateFPS, stats.MeanBatchSize, stats.LatencyP50Ms, stats.LatencyP99Ms)
	}
	rep.DetectionAgreement = detect.Agreement(dets["fp32"], dets["int8"], agreementIoU)
	if len(specs) > 0 {
		routed, err := benchRouted(specs, scale, calibFrames, clients, requests, cfg, scfg)
		if err != nil {
			return fmt.Errorf("selfbench routed: %w", err)
		}
		rep.Routed = routed
		parts := make([]string, len(specs))
		for i, sp := range specs {
			parts[i] = sp.String()
		}
		rep.RoutedSpec = strings.Join(parts, ",")
		for name, st := range routed {
			log.Printf("selfbench routed %s: %.1f images/s aggregate, mean batch %.2f, p50 %.1f ms, p99 %.1f ms",
				name, st.AggregateFPS, st.MeanBatchSize, st.LatencyP50Ms, st.LatencyP99Ms)
		}
	}
	res, err := benchResilience(det, cfg, scfg, size, calibFrames)
	if err != nil {
		return fmt.Errorf("selfbench resilience: %w", err)
	}
	rep.Resilience = res
	log.Printf("selfbench resilience: %d-request deadline storm -> %d x 504, %d late 200s, accounting holds: %v",
		res.StormRequests, res.Deadline504, res.LatePastDeadline200, res.AccountingHolds)
	stream, err := benchStreaming(det, cfg, scfg, size, calibFrames)
	if err != nil {
		return fmt.Errorf("selfbench streaming: %w", err)
	}
	rep.Streaming = stream
	log.Printf("selfbench streaming: %d sessions x %d frames -> %.1f frames/s, mean batch %.2f, track-id stability %.3f",
		stream.Sessions, stream.FramesPerSession, stream.FramesPerSecond, stream.MeanBatchSize, stream.TrackIDStability)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	log.Printf("selfbench: fp32 %.1f images/s vs int8 %.1f images/s, detection agreement %.3f (IoU >= %.2f) -> %s",
		rep.FP32.AggregateFPS, rep.Int8.AggregateFPS, rep.DetectionAgreement, agreementIoU, outPath)
	return nil
}

// benchRouted boots ONE routed server hosting every -models spec and
// drives each model with its own client fleet concurrently — cross-model
// interleaved traffic, the load pattern the per-model pools exist for —
// returning each model's private stats snapshot.
func benchRouted(specs []serve.ModelSpec, scale float64, calibFrames, clients, requests int, cfg engine.Config, scfg serve.Config) (map[string]serve.Stats, error) {
	entries, err := buildEntries(specs, scale, calibFrames, cfg, scfg)
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewRouted(entries)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()

	// Pre-render each model's frames at its own input size.
	frames := make(map[string][]*imgproc.Image, len(specs))
	for i, sp := range specs {
		cam := pipeline.NewSimCamera(dataset.DefaultConfig(sp.Size), requests, uint64(200+i))
		for {
			f, ok := cam.Next()
			if !ok {
				break
			}
			frames[sp.Name] = append(frames[sp.Name], f.Image)
		}
	}
	var wg sync.WaitGroup
	for _, sp := range specs {
		url := fmt.Sprintf("http://%s/detect?model=%s", ln.Addr(), sp.Name)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(name, url string) {
				defer wg.Done()
				for _, img := range frames[name] {
					if _, err := postFrame(url, img); err != nil {
						log.Printf("routed client %s: %v", name, err)
					}
				}
			}(sp.Name, url)
		}
	}
	wg.Wait()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	if err := srv.Close(); err != nil {
		return nil, err
	}
	out := make(map[string]serve.Stats, len(specs))
	for _, sp := range specs {
		st, ok := srv.ModelStats(sp.Name)
		if !ok {
			return nil, fmt.Errorf("no stats for routed model %q", sp.Name)
		}
		out[sp.Name] = st
	}
	return out, nil
}

// benchOnePrecision runs the client fleet against a fresh server wrapping
// the given model and returns the final stats plus every response's
// detections, indexed client-major ([c*requests+r]) so the two precision
// runs line up image for image.
func benchOnePrecision(mdl core.Model, cfg engine.Config, scfg serve.Config, precision string, frames [][]*imgproc.Image) (serve.Stats, [][]detect.Detection, error) {
	eng, err := engine.New(mdl, cfg)
	if err != nil {
		return serve.Stats{}, nil, err
	}
	scfg.Precision = precision
	srv, err := serve.New(eng, scfg)
	if err != nil {
		return serve.Stats{}, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serve.Stats{}, nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	url := fmt.Sprintf("http://%s/detect", ln.Addr())

	clients := len(frames)
	requests := len(frames[0])
	collected := make([][]detect.Detection, clients*requests)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r, img := range frames[c] {
				dets, err := postFrame(url, img)
				if err != nil {
					log.Printf("client %d: %v", c, err)
					continue
				}
				collected[c*requests+r] = dets
			}
		}(c)
	}
	wg.Wait()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	if err := srv.Close(); err != nil {
		return serve.Stats{}, nil, err
	}
	return srv.Stats(), collected, nil
}

// benchClient is the selfbench fleet's HTTP client: a per-request timeout
// turns a wedged server into a reported error instead of a benchmark that
// hangs forever.
var benchClient = &http.Client{Timeout: 30 * time.Second}

// postFrame sends one image as a JSON detect request and returns the
// detections, retrying briefly on 429 so the benchmark exercises
// backpressure without losing samples.
func postFrame(url string, img *imgproc.Image) ([]detect.Detection, error) {
	req := serve.DetectRequest{Width: img.W, Height: img.H, Pixels: img.Pix}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := benchClient.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var out serve.DetectResponse
			err := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			dets := make([]detect.Detection, len(out.Detections))
			for i, d := range out.Detections {
				dets[i] = detect.Detection{
					Box:   detect.Box{X: d.X, Y: d.Y, W: d.W, H: d.H},
					Class: d.Class, Score: d.Score,
				}
			}
			return dets, nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 50:
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(2 * time.Millisecond)
		default:
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("POST %s: %s", url, resp.Status)
		}
	}
}
