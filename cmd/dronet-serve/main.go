// Command dronet-serve exposes a detector as the HTTP micro-batching
// service (internal/serve): concurrent requests are admitted through a
// bounded queue (429 on overload) and coalesced into dynamic micro-batches
// executed on the multi-stream engine's replica pool.
//
// Usage:
//
//	dronet-serve -addr :8080 -model dronet -size 128 -scale 0.5 \
//	    -weights dronet.weights -workers 4 -max-batch 8 -max-wait 2ms
//
// The server prints "listening on HOST:PORT" once the socket is bound (so
// -addr 127.0.0.1:0 picks a free port scripts can parse) and drains
// in-flight requests on SIGINT/SIGTERM.
//
// With -selfbench the command instead boots the server in-process, drives
// it with concurrent synthetic clients, and writes the machine-readable
// throughput report (serve.Stats plus the run parameters) to -bench-out —
// this is what `make bench` uses to emit BENCH_serve.json.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/imgproc"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dronet-serve: ")
	addr := flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
	model := flag.String("model", models.DroNet, "model name")
	size := flag.Int("size", 128, "network input resolution")
	scale := flag.Float64("scale", 0.5, "filter-count scale (1.0 = paper-size model)")
	weightsPath := flag.String("weights", "", "trained weights file (random init when empty)")
	workers := flag.Int("workers", runtime.NumCPU(), "batch worker pool size (network replicas)")
	maxBatch := flag.Int("max-batch", 8, "maximum images per micro-batch")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "maximum wait for a batch to fill")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 8*max-batch); full queue returns 429")
	thresh := flag.Float64("thresh", 0.24, "detection confidence threshold")
	altFilter := flag.Bool("altfilter", false, "apply the altitude size gate when requests carry an altitude")
	selfbench := flag.Bool("selfbench", false, "run the serving throughput benchmark instead of serving")
	benchOut := flag.String("bench-out", "BENCH_serve.json", "selfbench: output path for the JSON report")
	benchClients := flag.Int("bench-clients", 8, "selfbench: concurrent synthetic clients")
	benchRequests := flag.Int("bench-requests", 40, "selfbench: requests per client")
	flag.Parse()

	det, err := core.NewScaledDetector(*model, *size, *scale, 1)
	if err != nil {
		log.Fatal(err)
	}
	if *weightsPath != "" {
		if err := det.LoadWeights(*weightsPath); err != nil {
			log.Fatal(err)
		}
	} else {
		log.Print("warning: no -weights given, using random initialization")
	}

	cfg := engine.Config{Workers: *workers, Thresh: *thresh, NMSThresh: det.NMSThresh}
	if *altFilter {
		gate := detect.NewVehicleAltitudeFilter()
		cfg.AltitudeFilter = &gate
	}
	eng, err := engine.New(det.Net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(eng, serve.Config{
		MaxBatch:   *maxBatch,
		MaxWait:    *maxWait,
		QueueDepth: *queueDepth,
		Warm:       true,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *selfbench {
		if err := runSelfBench(srv, *size, *benchClients, *benchRequests, *benchOut, *model, *scale); err != nil {
			log.Fatal(err)
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	log.Printf("model %s size %d scale %.2f, %d workers, max-batch %d, max-wait %s, queue %d",
		*model, *size, *scale, eng.Workers(), *maxBatch, *maxWait, srv.Stats().QueueCap)

	httpSrv := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%s: draining", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	log.Printf("final stats: %+v", srv.Stats())
}

// benchReport is the schema of BENCH_serve.json: the run parameters plus
// the serving metrics snapshot after the run.
type benchReport struct {
	Model    string      `json:"model"`
	Scale    float64     `json:"scale"`
	Size     int         `json:"size"`
	Clients  int         `json:"clients"`
	Requests int         `json:"requests_per_client"`
	Stats    serve.Stats `json:"stats"`
}

// runSelfBench boots the server on a loopback port, drives it with
// concurrent synthetic clients over real HTTP (the same path production
// traffic takes), and writes the report.
func runSelfBench(srv *serve.Server, size, clients, requests int, outPath, model string, scale float64) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("selfbench: need clients >= 1 and requests >= 1")
	}
	// Pre-render each client's frames so generation cost stays off the clock.
	frames := make([][]*imgproc.Image, clients)
	for c := range frames {
		cam := pipeline.NewSimCamera(dataset.DefaultConfig(size), requests, uint64(100+c))
		for {
			f, ok := cam.Next()
			if !ok {
				break
			}
			frames[c] = append(frames[c], f.Image)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	url := fmt.Sprintf("http://%s/detect", ln.Addr())
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, img := range frames[c] {
				if err := postFrame(url, img); err != nil {
					log.Printf("client %d: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	if err := srv.Close(); err != nil {
		return err
	}
	rep := benchReport{Model: model, Scale: scale, Size: size, Clients: clients, Requests: requests, Stats: srv.Stats()}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	log.Printf("selfbench: %.1f images/s aggregate, mean batch %.2f, p50 %.1f ms, p99 %.1f ms -> %s",
		rep.Stats.AggregateFPS, rep.Stats.MeanBatchSize, rep.Stats.LatencyP50Ms, rep.Stats.LatencyP99Ms, outPath)
	return nil
}

// postFrame sends one image as a JSON detect request, retrying briefly on
// 429 so the benchmark exercises backpressure without losing samples.
func postFrame(url string, img *imgproc.Image) error {
	req := serve.DetectRequest{Width: img.W, Height: img.H, Pixels: img.Pix}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 50:
			time.Sleep(2 * time.Millisecond)
		default:
			return fmt.Errorf("POST %s: %s", url, resp.Status)
		}
	}
}
