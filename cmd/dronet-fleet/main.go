// Command dronet-fleet runs the multi-stream concurrent inference engine: N
// simulated camera streams fanned across a worker pool of weight-sharing
// detector replicas, with per-stream and fleet-wide throughput, latency and
// tracking statistics. With -compare it first runs the same streams serially
// on one worker and reports the parallel speedup.
//
// Usage:
//
//	dronet-fleet -model dronet -size 128 -scale 0.5 -streams 4 -workers 4 \
//	    -frames 50 -weights dronet.weights -track -compare
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dronet-fleet: ")
	model := flag.String("model", models.DroNet, "model name")
	size := flag.Int("size", 128, "network input resolution")
	scale := flag.Float64("scale", 0.5, "filter-count scale (1.0 = paper-size model)")
	weightsPath := flag.String("weights", "", "trained weights file (random init when empty)")
	streams := flag.Int("streams", 4, "number of simulated camera streams")
	workers := flag.Int("workers", runtime.NumCPU(), "worker pool size (network replicas)")
	frames := flag.Int("frames", 50, "frames per stream")
	seed := flag.Uint64("seed", 7, "base seed for the simulated cameras")
	thresh := flag.Float64("thresh", 0.24, "detection confidence threshold")
	track := flag.Bool("track", false, "run a per-stream IoU tracker and count unique vehicles")
	altitude := flag.Bool("altfilter", false, "apply the altitude size gate per frame")
	compare := flag.Bool("compare", false, "also run the streams serially and report the speedup")
	flag.Parse()

	if *streams < 1 || *frames < 1 {
		log.Fatal("need -streams >= 1 and -frames >= 1")
	}
	det, err := core.NewScaledDetector(*model, *size, *scale, 1)
	if err != nil {
		log.Fatal(err)
	}
	if *weightsPath != "" {
		if err := det.LoadWeights(*weightsPath); err != nil {
			log.Fatal(err)
		}
	} else {
		log.Print("warning: no -weights given, using random initialization")
	}

	cfg := engine.Config{
		Workers:   *workers,
		Thresh:    *thresh,
		NMSThresh: det.NMSThresh,
		Track:     *track,
	}
	if *altitude {
		gate := detect.NewVehicleAltitudeFilter()
		cfg.AltitudeFilter = &gate
	}

	sources := func() []pipeline.Source {
		srcs := make([]pipeline.Source, *streams)
		for i := range srcs {
			srcs[i] = pipeline.NewSimCamera(dataset.DefaultConfig(*size), *frames, *seed+uint64(i))
		}
		return srcs
	}

	var serialFPS float64
	if *compare {
		serialCfg := cfg
		serialCfg.Workers = 1
		serialEng, err := engine.New(det.Net, serialCfg)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := serialEng.Run(sources())
		if err != nil {
			log.Fatal(err)
		}
		serialFPS = stats.AggregateFPS
		fmt.Printf("serial   %s\n\n", stats)
	}

	eng, err := engine.New(det.Net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := eng.Run(sources())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel %s\n", stats)
	if *track {
		fmt.Printf("fleet unique vehicles: %d\n", stats.UniqueVehicles)
	}
	if *compare && serialFPS > 0 {
		fmt.Printf("\nspeedup: %.2fx aggregate FPS (%d workers vs 1)\n", stats.AggregateFPS/serialFPS, stats.Workers)
	}
}
