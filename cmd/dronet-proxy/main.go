// Command dronet-proxy fronts a fleet of dronet-serve shard processes with
// the consistent-hash forwarding tier (internal/cluster): requests carrying
// a camera identity (?camera= or X-Camera-ID) are pinned to a stable owner
// shard so per-camera streams batch together, keyless requests round-robin,
// and model-routing semantics (?model=, X-Model, altitude fields) pass
// through untouched for each shard's own registry to resolve.
//
// Point it at an existing fleet:
//
//	dronet-proxy -addr :9090 -shards 10.0.0.1:8080,10.0.0.2:8080
//
// or let it spawn a local fleet of shard processes itself:
//
//	dronet-proxy -addr :9090 -spawn 3 -serve-bin bin/dronet-serve \
//	    -size 96 -scale 0.25 -workers 2 -precision int8
//
// Spawned shards listen on free loopback ports and are labelled shard0..N-1
// via dronet-serve's -shard-id; the proxy SIGTERMs them on shutdown. The
// proxy actively probes every shard's /healthz, ejects shards that fail
// consecutively and re-admits them when probes succeed again; a killed
// shard only costs capacity — its cameras fail over to ring successors and
// clients only ever see 200/429/503. GET /metrics serves the fleet
// document (per-shard labelled blocks plus a fleet rollup), GET /healthz
// the ring membership and per-shard status.
//
// With -selfbench the command spawns -spawn shards (default 2), drives
// -bench-cameras camera streams through an in-process proxy and merges a
// "sharded" section (client throughput, fleet rollup, per-shard balance)
// into the -bench-out JSON report next to dronet-serve's own sections.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/imgproc"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dronet-proxy: ")
	addr := flag.String("addr", ":9090", "proxy listen address (host:0 picks a free port)")
	shardsFlag := flag.String("shards", "", "comma-separated shard addresses (host:port,...) of an already-running fleet")
	spawn := flag.Int("spawn", 0, "spawn this many local dronet-serve shard processes instead of -shards")
	serveBin := flag.String("serve-bin", "bin/dronet-serve", "dronet-serve binary for -spawn")
	size := flag.Int("size", 96, "spawned shards: network input resolution")
	scale := flag.Float64("scale", 0.25, "spawned shards: filter-count scale")
	workers := flag.Int("workers", 2, "spawned shards: batch worker pool size")
	maxBatch := flag.Int("max-batch", 4, "spawned shards: maximum images per micro-batch")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "spawned shards: maximum wait for a batch to fill")
	precision := flag.String("precision", "fp32", "spawned shards: inference precision (fp32 or int8)")
	modelsFlag := flag.String("models", "", "spawned shards: routed multi-model registry spec (passed through to dronet-serve -models)")
	shardMaxSessions := flag.Int("shard-max-sessions", 64, "spawned shards: per-shard cap on open /stream sessions (dronet-serve -max-sessions)")
	shardSessionIdle := flag.Duration("shard-session-idle", 60*time.Second, "spawned shards: streaming idle-eviction timeout (dronet-serve -session-idle)")
	shardSessionInflight := flag.Int("shard-session-inflight", 4, "spawned shards: per-session in-flight frame bound (dronet-serve -session-inflight)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the consistent-hash ring")
	maxInflight := flag.Int("max-inflight", 32, "per-shard bound on concurrently forwarded requests (429 beyond it)")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "active /healthz probe interval")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive probe failures before a shard's breaker opens")
	breakerWindow := flag.Int("breaker-window", 20, "per-shard breaker: data-plane outcome window size")
	breakerMinSamples := flag.Int("breaker-min-samples", 5, "per-shard breaker: minimum windowed samples before the error rate can trip")
	breakerErrorRate := flag.Float64("breaker-error-rate", 0.5, "per-shard breaker: windowed error rate that opens the breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "per-shard breaker: open-state cooldown before a half-open probe (0 = 2x health-interval)")
	maxStreams := flag.Int("max-streams", 256, "proxy-wide cap on relayed /stream sessions (503 + Retry-After beyond)")
	retryBudget := flag.Float64("retry-budget", 10, "failover retry token bucket capacity (exhausted retries answer 503 + Retry-After)")
	retryRefill := flag.Float64("retry-refill", 0.1, "retry tokens refilled per successful forward")
	faultsFlag := flag.String("faults", "", "arm fault injection, e.g. 'cluster.forward#HOST:PORT=error' (testing only; also via DRONET_FAULTS)")
	selfbench := flag.Bool("selfbench", false, "run the sharded serving benchmark instead of proxying")
	benchCameras := flag.Int("bench-cameras", 12, "selfbench: concurrent camera streams")
	benchRequests := flag.Int("bench-requests", 25, "selfbench: frames per camera")
	benchOut := flag.String("bench-out", "BENCH_serve.json", "selfbench: JSON report to merge the sharded section into")
	flag.Parse()

	if (*shardsFlag == "") == (*spawn == 0) {
		log.Fatal("exactly one of -shards or -spawn must be given")
	}
	if *faultsFlag != "" {
		if err := faults.Arm(*faultsFlag); err != nil {
			log.Fatal(err)
		}
		log.Printf("warning: fault injection armed: %s", *faultsFlag)
	}

	var fleet *shardFleet
	var addrs []string
	if *spawn > 0 {
		if *selfbench && *spawn < 2 {
			*spawn = 2 // a sharded benchmark needs a fleet to shard across
		}
		var err error
		fleet, err = spawnFleet(*serveBin, *spawn, shardArgs(*size, *scale, *workers, *maxBatch, *maxWait, *precision, *modelsFlag,
			*shardMaxSessions, *shardSessionIdle, *shardSessionInflight))
		if err != nil {
			log.Fatal(err)
		}
		defer fleet.stop()
		addrs = fleet.addrs
	} else {
		addrs = strings.Split(*shardsFlag, ",")
	}

	p, err := cluster.NewProxy(cluster.ProxyConfig{
		Shards:            addrs,
		VNodes:            *vnodes,
		MaxInflight:       *maxInflight,
		HealthInterval:    *healthInterval,
		FailThreshold:     *failThreshold,
		BreakerWindow:     *breakerWindow,
		BreakerMinSamples: *breakerMinSamples,
		BreakerErrorRate:  *breakerErrorRate,
		BreakerCooldown:   *breakerCooldown,
		RetryBudget:       *retryBudget,
		RetryRefill:       *retryRefill,
		MaxStreamSessions: *maxStreams,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	if *selfbench {
		if err := runShardedBench(p, len(addrs), *size, *benchCameras, *benchRequests, *benchOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	log.Printf("fronting %d shards: %s", len(addrs), strings.Join(p.ShardAddrs(), ", "))

	httpSrv := &http.Server{Handler: p}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%s: shutting down", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
}

// shardArgs builds the dronet-serve argument list shared by every spawned
// shard; the per-shard -shard-id and -addr are appended at spawn time.
func shardArgs(size int, scale float64, workers, maxBatch int, maxWait time.Duration, precision, modelsSpec string,
	maxSessions int, sessionIdle time.Duration, sessionInflight int) []string {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-size", fmt.Sprint(size),
		"-scale", fmt.Sprint(scale),
		"-workers", fmt.Sprint(workers),
		"-max-batch", fmt.Sprint(maxBatch),
		"-max-wait", maxWait.String(),
		"-max-sessions", fmt.Sprint(maxSessions),
		"-session-idle", sessionIdle.String(),
		"-session-inflight", fmt.Sprint(sessionInflight),
	}
	if modelsSpec != "" {
		args = append(args, "-models", modelsSpec)
	} else {
		args = append(args, "-precision", precision)
	}
	return args
}

// shardFleet is a set of locally spawned dronet-serve processes.
type shardFleet struct {
	cmds  []*exec.Cmd
	addrs []string
}

// spawnFleet starts n shard processes labelled shard0..n-1 on free loopback
// ports and waits for each to announce its address. Any spawn failure tears
// down what already started.
func spawnFleet(bin string, n int, baseArgs []string) (*shardFleet, error) {
	f := &shardFleet{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("shard%d", i)
		cmd := exec.Command(bin, append(append([]string{}, baseArgs...), "-shard-id", id)...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			f.stop()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			f.stop()
			return nil, fmt.Errorf("spawn %s: %w", id, err)
		}
		f.cmds = append(f.cmds, cmd)
		addr, err := awaitListenLine(stdout)
		if err != nil {
			f.stop()
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		log.Printf("spawned %s on %s", id, addr)
		f.addrs = append(f.addrs, addr)
	}
	return f, nil
}

// awaitListenLine scans a shard's stdout for the "listening on HOST:PORT"
// announcement (30s cap) and keeps draining the pipe afterwards so the
// child never blocks on a full pipe.
func awaitListenLine(stdout io.ReadCloser) (string, error) {
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		announced := false
		for sc.Scan() {
			if line := sc.Text(); !announced && strings.HasPrefix(line, "listening on ") {
				addrCh <- strings.TrimPrefix(line, "listening on ")
				announced = true
			}
		}
		if !announced {
			close(addrCh)
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			return "", fmt.Errorf("shard exited before announcing its port")
		}
		return addr, nil
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("shard never announced its port")
	}
}

// stop SIGTERMs every spawned shard (the drain path) and reaps it, falling
// back to SIGKILL after 10s.
func (f *shardFleet) stop() {
	for _, cmd := range f.cmds {
		_ = cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, cmd := range f.cmds {
		done := make(chan struct{})
		go func(c *exec.Cmd) { _ = c.Wait(); close(done) }(cmd)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
}

// shardBalance is one shard's slice of the sharded benchmark: how much of
// the camera traffic it absorbed.
type shardBalance struct {
	ShardID        string  `json:"shard_id"`
	ForwardedTotal uint64  `json:"forwarded_total"`
	Completed      uint64  `json:"completed"`
	ImagesPerSec   float64 `json:"images_per_sec"`
}

// shardedReport is the "sharded" section merged into BENCH_serve.json: the
// client-observed throughput through the proxy, the fleet rollup, and the
// per-shard balance of the camera streams.
type shardedReport struct {
	Shards         int                     `json:"shards"`
	Cameras        int                     `json:"cameras"`
	RequestsPerCam int                     `json:"requests_per_camera"`
	WallSeconds    float64                 `json:"wall_s"`
	ClientImgPerS  float64                 `json:"client_images_per_sec"`
	Rollup         serve.Stats             `json:"rollup"`
	PerShard       map[string]shardBalance `json:"per_shard"`
}

// runShardedBench drives cameras*requests frames through the proxy (each
// camera a goroutine posting its stream in order, retrying briefly on 429)
// and merges the measured section into the bench report.
func runShardedBench(p *cluster.Proxy, shards, size, cameras, requests int, outPath string) error {
	if cameras < 1 || requests < 1 {
		return fmt.Errorf("selfbench: need cameras >= 1 and requests >= 1")
	}
	ts := &http.Server{Handler: p}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = ts.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ts.Shutdown(ctx)
	}()

	// Pre-render each camera's frames so generation cost stays off the clock.
	frames := make([][]*imgproc.Image, cameras)
	for c := range frames {
		cam := pipeline.NewSimCamera(dataset.DefaultConfig(size), requests, uint64(300+c))
		for {
			f, ok := cam.Next()
			if !ok {
				break
			}
			frames[c] = append(frames[c], f.Image)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, cameras)
	start := time.Now()
	for c := 0; c < cameras; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			url := fmt.Sprintf("http://%s/detect?camera=bench-cam-%d", ln.Addr(), c)
			for _, img := range frames[c] {
				if err := postFrame(url, img); err != nil {
					errs <- fmt.Errorf("camera %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	fleet := p.FleetReport()
	rep := shardedReport{
		Shards:         shards,
		Cameras:        cameras,
		RequestsPerCam: requests,
		WallSeconds:    wall.Seconds(),
		ClientImgPerS:  float64(cameras*requests) / wall.Seconds(),
		Rollup:         fleet.Stats,
		PerShard:       make(map[string]shardBalance, len(fleet.Shards)),
	}
	for addr, sm := range fleet.Shards {
		b := shardBalance{ShardID: sm.ShardID, ForwardedTotal: sm.ForwardedTotal}
		if sm.Metrics != nil {
			b.Completed = sm.Metrics.Stats.Completed
			b.ImagesPerSec = sm.Metrics.Stats.AggregateFPS
		}
		rep.PerShard[addr] = b
		log.Printf("selfbench shard %s (%s): forwarded %d, completed %d", b.ShardID, addr, b.ForwardedTotal, b.Completed)
	}
	log.Printf("selfbench sharded: %d cameras x %d frames across %d shards in %.2fs -> %.1f images/s at the client, fleet rollup %.1f images/s",
		cameras, requests, shards, wall.Seconds(), rep.ClientImgPerS, rep.Rollup.AggregateFPS)
	return mergeSection(outPath, "sharded", rep)
}

// mergeSection read-modify-writes one top-level key of the JSON report so
// the proxy benchmark composes with dronet-serve's selfbench sections
// without either binary knowing the other's schema.
func mergeSection(path, key string, v any) error {
	doc := make(map[string]json.RawMessage)
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: existing report is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	doc[key] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	log.Printf("selfbench: merged %q section into %s", key, path)
	return nil
}

// benchClient caps each benchmark request: a wedged shard becomes a
// reported error instead of a benchmark that hangs forever.
var benchClient = &http.Client{Timeout: 30 * time.Second}

// postFrame sends one frame as a JSON detect request through the proxy,
// retrying briefly on 429 (either backpressure layer) so the benchmark
// exercises shedding without losing samples.
func postFrame(url string, img *imgproc.Image) error {
	req := serve.DetectRequest{Width: img.W, Height: img.H, Pixels: img.Pix}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		resp, err := benchClient.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		code := resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case code == http.StatusOK:
			return nil
		case code == http.StatusTooManyRequests && attempt < 100:
			time.Sleep(2 * time.Millisecond)
		default:
			return fmt.Errorf("POST %s: status %d", url, code)
		}
	}
}
