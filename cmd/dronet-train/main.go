// Command dronet-train trains one of the paper's models on a dataset
// directory produced by dronet-data (or on freshly generated scenes with
// -synth), then writes the trained weights.
//
// Usage:
//
//	dronet-train -model dronet -size 128 -scale 0.5 -synth 48 -batches 400 -out dronet.weights
//	dronet-train -model dronet -size 512 -data data/train -out dronet.weights
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dronet-train: ")
	model := flag.String("model", models.DroNet, "model name")
	size := flag.Int("size", 512, "network input resolution")
	scale := flag.Float64("scale", 1.0, "filter-count scale for the reduced-resolution study")
	data := flag.String("data", "", "dataset directory (from dronet-data)")
	synth := flag.Int("synth", 0, "generate this many synthetic scenes instead of loading -data")
	batches := flag.Int("batches", 0, "training batches (default: model's max_batches)")
	batchSize := flag.Int("batch", 0, "mini-batch size (default: model's batch)")
	lr := flag.Float64("lr", 0, "learning rate (default: model's)")
	seed := flag.Uint64("seed", 1, "initialization/shuffle seed")
	out := flag.String("out", "model.weights", "output weights path")
	flag.Parse()

	det, err := core.NewScaledDetector(*model, *size, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var ds *dataset.Dataset
	switch {
	case *synth > 0:
		cfg := dataset.DefaultConfig(*size)
		ds = dataset.Generate(cfg, *synth, *seed+100)
	case *data != "":
		ds, err = dataset.Load(*data)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("provide -data DIR or -synth N")
	}
	fmt.Println("dataset:", ds.Stats())

	tc := det.DefaultTrainConfig()
	tc.Seed = *seed
	tc.Log = os.Stdout
	if *batches > 0 {
		tc.Batches = *batches
	}
	if *batchSize > 0 {
		tc.BatchSize = *batchSize
	}
	if *lr > 0 {
		tc.LR = *lr
	}
	res, err := det.TrainOn(ds, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d batches, final loss %.4f (avg %.4f)\n", res.Batches, res.FinalLoss, res.AvgLoss)
	m, err := det.EvaluateOn(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training-set metrics:", m)
	if err := det.SaveWeights(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("weights written to", *out)
}
