// Command dronet-arch prints the layer structure of the paper's four CNN
// architectures — the information in Fig. 1 (baselines) and Fig. 2 (DroNet)
// — together with per-layer and total workload (FLOPs) and parameter
// counts.
//
// Usage:
//
//	dronet-arch                # all four models at their Fig. 1 size
//	dronet-arch -model dronet -size 512
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/models"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dronet-arch: ")
	model := flag.String("model", "", "model to print (default: all four)")
	size := flag.Int("size", 416, "input resolution")
	flag.Parse()

	names := models.Names()
	if *model != "" {
		names = []string{*model}
	}
	rng := tensor.NewRNG(1)
	for _, name := range names {
		net, _, err := models.Build(name, *size, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(net.Summary())
	}
}
