// Command dronet-sweep regenerates the paper's parameter-space exploration:
// Fig. 3 (normalized FPS / IoU / Sensitivity / Precision for each model
// across input sizes) and Fig. 4 (the weighted composite Score of eq. 3).
//
// The FPS arm always uses the full-size networks on the platform model. The
// accuracy arm trains each model's proportionally scaled variant once at
// scaled size 128 (DESIGN.md §6) and evaluates the same weights across the
// scaled sizes {96..160} that map to the paper's {352..608}, so the whole
// sweep runs on a laptop-class CPU. Pass -train to run the accuracy arm;
// without it the harness prints the FPS-only table.
//
// Usage:
//
//	dronet-sweep                     # FPS arm only, all models × sizes
//	dronet-sweep -train              # full Fig. 3 + Fig. 4 (trains 4 models, ~15 min)
//	dronet-sweep -train -quick -batches 600  # shorter budget, 3 sizes
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"repro/internal/cfg"
	"repro/internal/dataset"
	"repro/internal/demo"
	"repro/internal/eval"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/platform"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/weights"
)

// sizeMap pairs each paper input size with its scaled-study size.
var sizeMap = [][2]int{{352, 96}, {416, 112}, {480, 128}, {544, 144}, {608, 160}}

// studyScale gives each model the filter-count scale, stem floor, training
// batches and learning rate used by the accuracy arm. Scales are chosen so
// each scaled model trains in comparable wall-clock time on one CPU core
// while preserving the paper's capacity ordering: TinyYoloVoc keeps by far
// the most filters (with a floor of 8 so its stem stays viable), while
// SmallYoloV3 keeps its too-thin stem — the paper attributes its -53%
// sensitivity exactly to that over-aggressive weight reduction. The wide
// variants need a lower learning rate than the thin ones.
var studyScale = map[string]struct {
	factor  float64
	floor   int
	batches int
	lr      float64
}{
	models.TinyYoloVoc: {0.15, 8, 1500, 0.004},
	models.TinyYoloNet: {0.20, 8, 1500, 0.008},
	models.SmallYoloV3: {0.50, 2, 1800, 0.015},
	models.DroNet:      {0.50, 2, 1800, 0.015},
}

// trainSize is the scaled input resolution every model trains at; the
// trained weights are then evaluated at each study size (YOLO networks are
// fully convolutional, so weights transfer across input resolutions — the
// same multi-scale property Darknet itself exploits).
const trainSize = 128

type cell struct {
	model      string
	paperSize  int
	metrics    eval.Metrics // FPS from platform model; accuracy from scaled study
	trained    bool
	normalized eval.Metrics
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dronet-sweep: ")
	doTrain := flag.Bool("train", false, "run the scaled-training accuracy arm")
	quick := flag.Bool("quick", false, "3 sizes instead of 5 and a shorter training budget")
	batches := flag.Int("batches", 0, "cap on training batches per model (0 = per-model default)")
	platName := flag.String("platform", "i5", "platform for the FPS arm")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	plat, err := platform.ByName(*platName)
	if err != nil {
		log.Fatal(err)
	}
	sizes := sizeMap
	if *quick {
		sizes = [][2]int{{352, 96}, {480, 128}, {608, 160}}
		if *batches > 1200 {
			*batches = 1200
		}
	}

	// Scaled-study data: close-up scenes whose vehicles span ≈1 grid cell,
	// the same anchor regime the full-size models see on real footage.
	var trainSet, valSet *dataset.Dataset
	if *doTrain {
		gen := func(n int, s uint64) *dataset.Dataset {
			return dataset.Generate(demo.SceneConfig(160), n, s)
		}
		trainSet = gen(64, *seed+10)
		valSet = gen(16, *seed+20)
		fmt.Printf("scaled study data: train %s | val %s\n\n", trainSet.Stats(), valSet.Stats())
	}

	var cells []cell
	for _, name := range models.Names() {
		// Accuracy arm: one training run per model at trainSize, then
		// multi-scale evaluation of the same weights.
		var trained *network.Network
		if *doTrain {
			var err error
			trained, err = trainScaled(name, *batches, *seed, trainSet)
			if err != nil {
				log.Fatal(err)
			}
		}
		for _, sz := range sizes {
			c := cell{model: name, paperSize: sz[0]}
			full, _, err := models.Build(name, sz[0], tensor.NewRNG(*seed))
			if err != nil {
				log.Fatal(err)
			}
			c.metrics.FPS = plat.Predict(full).FPS
			if *doTrain {
				acc, err := evalAtSize(name, trained, sz[1], *seed, valSet)
				if err != nil {
					log.Fatal(err)
				}
				c.metrics.MeanIoU = acc.MeanIoU
				c.metrics.Sensitivity = acc.Sensitivity
				c.metrics.Precision = acc.Precision
				c.trained = true
				fmt.Printf("  %-12s paper-size %d (scaled %d): %v\n", name, sz[0], sz[1], acc)
			}
			cells = append(cells, c)
		}
	}

	// Normalize across all cells, as the paper does for Fig. 3.
	all := make([]eval.Metrics, len(cells))
	for i, c := range cells {
		all[i] = c.metrics
	}
	norm := eval.Normalize(all)
	for i := range cells {
		cells[i].normalized = norm[i]
	}

	fmt.Println("\n=== Fig. 3: normalized metrics per model and input size ===")
	fmt.Printf("platform for FPS arm: %s\n", plat.Name)
	fmt.Printf("%-14s %6s %8s %8s %8s %8s\n", "model", "size", "FPS", "IoU", "Sens", "Prec")
	for _, c := range cells {
		fmt.Printf("%-14s %6d %8.3f %8.3f %8.3f %8.3f\n",
			c.model, c.paperSize, c.normalized.FPS, c.normalized.MeanIoU,
			c.normalized.Sensitivity, c.normalized.Precision)
	}

	if *doTrain {
		fmt.Println("\n=== Fig. 4: weighted Score (w = 0.4 FPS, 0.2 IoU, 0.2 Sens, 0.2 Prec) ===")
		bestPer := map[string]struct {
			size  int
			score float64
		}{}
		for _, c := range cells {
			s := eval.Score(eval.PaperWeights, c.normalized)
			fmt.Printf("%-14s %6d  score %.3f\n", c.model, c.paperSize, s)
			if b, ok := bestPer[c.model]; !ok || s > b.score {
				bestPer[c.model] = struct {
					size  int
					score float64
				}{c.paperSize, s}
			}
		}
		fmt.Println("\nbest configuration per model:")
		winner, winScore := "", -1.0
		for _, name := range models.Names() {
			b := bestPer[name]
			fmt.Printf("%-14s @%d  score %.3f\n", name, b.size, b.score)
			if b.score > winScore {
				winner, winScore = fmt.Sprintf("%s @%d", name, b.size), b.score
			}
		}
		fmt.Printf("\nselected model (highest score): %s\n", winner)
	}
}

// buildScaled constructs the filter-scaled study variant of a model at the
// given input size.
func buildScaled(name string, size int, seed uint64) (*network.Network, error) {
	sc := studyScale[name]
	text, err := models.Cfg(name, size)
	if err != nil {
		return nil, err
	}
	scaled, err := models.ScaleWithFloor(text, sc.factor, sc.floor)
	if err != nil {
		return nil, err
	}
	def, err := cfg.ParseString(scaled)
	if err != nil {
		return nil, err
	}
	net, _, err := cfg.Build(name, def, tensor.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	return net, nil
}

// trainScaled trains a model's study variant once at trainSize.
func trainScaled(name string, batchCap int, seed uint64, trainSet *dataset.Dataset) (*network.Network, error) {
	sc := studyScale[name]
	batches := sc.batches
	if batchCap > 0 && batches > batchCap {
		batches = batchCap
	}
	net, err := buildScaled(name, trainSize, seed)
	if err != nil {
		return nil, err
	}
	c := demo.DemoTrainConfig(batches, seed, nil)
	c.LR = sc.lr
	fmt.Printf("training %s study variant (%d batches, lr %g)...\n", name, batches, sc.lr)
	if _, err := train.Run(net, trainSet, c); err != nil {
		return nil, err
	}
	return net, nil
}

// evalAtSize transfers the trained weights into the same architecture at a
// different input resolution and evaluates on the validation set.
func evalAtSize(name string, trained *network.Network, size int, seed uint64, valSet *dataset.Dataset) (eval.Metrics, error) {
	net := trained
	if size != trainSize {
		resized, err := buildScaled(name, size, seed)
		if err != nil {
			return eval.Metrics{}, err
		}
		var buf bytes.Buffer
		if err := weights.Save(trained, &buf); err != nil {
			return eval.Metrics{}, err
		}
		if err := weights.Load(resized, &buf); err != nil {
			return eval.Metrics{}, err
		}
		net = resized
	}
	return train.Evaluate(net, valSet, 0.2, 0.45)
}
