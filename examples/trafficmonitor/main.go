// Traffic monitoring: the Road Traffic Monitoring use case from the paper's
// introduction. A simulated UAV hovers over an urban area and streams
// frames; the detector counts vehicles per frame and the example reports a
// running traffic density estimate plus pipeline throughput — the same
// frame-by-frame loop §IV.B ran on the Odroid payload.
//
// Run with:
//
//	go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/detect"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/tracking"
)

func main() {
	log.SetFlags(0)
	demo.Banner(os.Stdout, "UAV road-traffic monitoring")

	const size = 128
	det, _, err := demo.TrainDemoDetector(size, 64, 1200, 11, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detector trained; starting the camera stream")

	counts := make([]int, 0, 20)
	tracker := tracking.New(tracking.DefaultConfig())
	runner := &pipeline.Runner{
		Net:       det.Net,
		Thresh:    det.Thresh,
		NMSThresh: det.NMSThresh,
		OnFrame: func(f pipeline.Frame, dets []detect.Detection) {
			counts = append(counts, len(dets))
			live := tracker.Update(dets)
			fmt.Printf("frame %2d: %d detections, %d tracked vehicles (truth %d)\n",
				f.Index, len(dets), len(live), len(f.Truths))
		},
	}
	cam := pipeline.NewSimCamera(demo.SceneConfig(size), 20, 42)
	stats, err := runner.Run(cam)
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	peak := 0
	for _, c := range counts {
		total += c
		if c > peak {
			peak = c
		}
	}
	fmt.Println()
	fmt.Println("pipeline:", stats)
	fmt.Println("tracker: ", tracker)
	fmt.Printf("traffic density: %.1f vehicles/frame average, %d peak, %d unique tracked\n",
		float64(total)/float64(len(counts)), peak, tracker.TotalConfirmed)

	// The paper's §IV.B deployment question: would the full-size DroNet
	// sustain real time on the UAV's computing payloads?
	full, err := core.NewDetector(models.DroNet, 512, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"i5", "odroid", "rpi3"} {
		fps, err := full.PredictFPS(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("full DroNet@512 deployment estimate on %-7s %6.1f FPS\n", p+":", fps)
	}
}
