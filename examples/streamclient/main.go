// Command streamclient is the walkthrough client for the streaming-session
// tier (internal/serve /stream, internal/ws) and the driver behind `make
// stream-smoke`: it boots a dronet-serve binary on a random loopback port
// with a deliberately small session budget, opens WebSocket sessions and
// walks the whole lifecycle — hello, per-frame results with stable track
// state, the max-sessions 503 with Retry-After, in-band errors for bad
// frames, idle eviction (bye "idle"), and the SIGTERM drain (bye "drain"
// followed by a clean server exit).
//
// With -sharded (and -proxy) it walks the relayed tier instead: two shard
// servers behind a dronet-proxy, asserting camera-affine session placement,
// then SIGTERM-draining the owner shard mid-session — the proxy must
// re-home the session to the survivor and inject the resumed:true marker,
// after which the replacement session's tracker starts fresh at frame 1.
// A short -spawn leg also boots the proxy in self-spawning mode to prove
// the -shard-session-* pass-through flags reach the child servers.
//
// Usage:
//
//	go run ./examples/streamclient -server bin/dronet-serve
//	go run ./examples/streamclient -sharded -server bin/dronet-serve -proxy bin/dronet-proxy
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/imgproc"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/ws"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamclient: ")
	server := flag.String("server", "", "path to a dronet-serve binary to spawn on a random port")
	proxyBin := flag.String("proxy", "", "path to a dronet-proxy binary (required with -sharded)")
	size := flag.Int("size", 96, "frame size to send (and model input when spawning)")
	frames := flag.Int("frames", 6, "frames to stream per session")
	sharded := flag.Bool("sharded", false, "walk the relayed tier: two shards behind a proxy, affinity + failover resume")
	flag.Parse()

	if *server == "" {
		log.Fatal("-server is required (build it with: go build -o bin/dronet-serve ./cmd/dronet-serve)")
	}
	if *sharded {
		if *proxyBin == "" {
			log.Fatal("-sharded needs -proxy (build it with: go build -o bin/dronet-proxy ./cmd/dronet-proxy)")
		}
		shardedWalk(*server, *proxyBin, *size, *frames)
		return
	}
	directWalk(*server, *size, *frames)
}

// directWalk exercises one server's whole session lifecycle: stream,
// session cap, bad-frame in-band error, idle eviction, SIGTERM drain.
func directWalk(serverBin string, size, frames int) {
	cmd, addr, err := spawnWithArgs(serverBin, []string{
		"-addr", "127.0.0.1:0", "-size", fmt.Sprint(size), "-scale", "0.25", "-workers", "2",
		"-max-sessions", "2", "-session-idle", "700ms", "-session-inflight", "4",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server up on %s (max-sessions 2, session-idle 700ms)\n", addr)

	imgs := renderFrames(size, frames, 42)

	// Session A: the happy path. Hello first, then one result per frame
	// with the seq echoed and the per-session tracker frame counting up.
	connA := dialStream(addr, "?camera=walk-a")
	hello := readMsg(connA)
	if hello.Type != serve.MsgHello || hello.Session == "" {
		log.Fatalf("first message %+v, want a hello with a session id", hello)
	}
	fmt.Printf("session %s open for camera %q (inflight %d, policy %s)\n",
		hello.Session, hello.Camera, hello.MaxInflight, hello.Policy)
	for i, img := range imgs {
		sendFrame(connA, i+1, img)
		msg := readMsg(connA)
		if msg.Type != serve.MsgResult || msg.Seq != i+1 {
			log.Fatalf("frame %d: got type %q seq %d (err %q), want an in-order result", i+1, msg.Type, msg.Seq, msg.Error)
		}
		if msg.Frame != i+1 {
			log.Fatalf("frame %d: tracker frame %d — per-session tracker state is off", i+1, msg.Frame)
		}
		fmt.Printf("frame %d: %d detections, %d tracks, batch %d, %.1f ms\n",
			msg.Seq, len(msg.Detections), len(msg.Tracks), msg.BatchSize, msg.LatencyMs)
	}

	// A malformed frame is an in-band error, not a dead session.
	if err := connA.WriteMessage([]byte(`{"width":0,"height":0}`)); err != nil {
		log.Fatal(err)
	}
	if msg := readMsg(connA); msg.Type != serve.MsgError || msg.Code != 400 {
		log.Fatalf("bad frame answered %+v, want an in-band 400", msg)
	}
	fmt.Println("malformed frame rejected in-band with code 400; session still live")

	// Fill the session budget: B fits, C is refused with plain HTTP.
	connB := dialStream(addr, "?camera=walk-b")
	if h := readMsg(connB); h.Type != serve.MsgHello {
		log.Fatalf("session b: first message %+v, want hello", h)
	}
	_, err = ws.Dial(addr, "/stream?camera=walk-c", nil, 5*time.Second)
	var he *ws.HandshakeError
	if !errors.As(err, &he) || he.StatusCode != 503 {
		log.Fatalf("third session: got %v, want a 503 handshake refusal", err)
	}
	if he.RetryAfter == "" {
		log.Fatal("session-cap 503 is missing Retry-After")
	}
	fmt.Printf("third session refused: 503 with Retry-After %ss\n", he.RetryAfter)
	closeSession(connB)
	fmt.Println("session b closed gracefully; slot freed")

	// Session A goes quiet: the sweeper must evict it with a bye "idle".
	msg := readMsg(connA)
	if msg.Type != serve.MsgBye || msg.Reason != serve.ByeReasonIdle {
		log.Fatalf("idle session got %+v, want bye/idle", msg)
	}
	if _, err := connA.ReadMessage(); !errors.Is(err, ws.ErrPeerClosed) {
		log.Fatalf("after bye: %v, want the server's close frame", err)
	}
	fmt.Println("idle session evicted: bye \"idle\" then a clean close")

	// Drain: a live session must get bye "drain" and the process must exit.
	connD := dialStream(addr, "?camera=walk-d")
	if h := readMsg(connD); h.Type != serve.MsgHello {
		log.Fatalf("drain session: first message %+v, want hello", h)
	}
	sendFrame(connD, 1, imgs[0])
	if msg := readMsg(connD); msg.Type != serve.MsgResult {
		log.Fatalf("drain session frame: %+v, want a result", msg)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		log.Fatal(err)
	}
	if msg := readMsg(connD); msg.Type != serve.MsgBye || msg.Reason != serve.ByeReasonDrain {
		log.Fatalf("on SIGTERM got %+v, want bye/drain", msg)
	}
	if _, err := connD.ReadMessage(); !errors.Is(err, ws.ErrPeerClosed) {
		log.Fatalf("after drain bye: %v, want the server's close frame", err)
	}
	if err := cmd.Wait(); err != nil {
		log.Fatalf("server exit: %v", err)
	}
	fmt.Println("SIGTERM drain: bye \"drain\" to the live session, server exited cleanly")
	fmt.Println("stream smoke (direct) passed")
}

// shardedWalk exercises the relayed tier: session affinity on the camera
// ring, transparent failover with the resumed marker when the owner shard
// drains, and the -spawn pass-through of the shard streaming flags.
func shardedWalk(serverBin, proxyBin string, size, frames int) {
	type shard struct {
		id   string
		cmd  *exec.Cmd
		addr string
	}
	shards := []shard{{id: "shard-a"}, {id: "shard-b"}}
	for i := range shards {
		cmd, addr, err := spawnWithArgs(serverBin, []string{
			"-addr", "127.0.0.1:0", "-size", fmt.Sprint(size), "-scale", "0.25", "-workers", "2",
			"-shard-id", shards[i].id, "-max-sessions", "8", "-session-inflight", "4",
		})
		if err != nil {
			log.Fatal(err)
		}
		shards[i].cmd, shards[i].addr = cmd, addr
		fmt.Printf("%s up on %s\n", shards[i].id, addr)
	}
	proxyCmd, proxyAddr, err := spawnWithArgs(proxyBin, []string{
		"-addr", "127.0.0.1:0", "-shards", shards[0].addr + "," + shards[1].addr,
		"-health-interval", "100ms", "-max-streams", "8",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proxy up on %s fronting both shards\n", proxyAddr)
	// Give the health loop a beat to learn the shards' identity labels.
	time.Sleep(400 * time.Millisecond)

	imgs := renderFrames(size, frames, 43)

	conn := dialStream(proxyAddr, "?camera=affine-cam")
	hello := readMsg(conn)
	if hello.Type != serve.MsgHello {
		log.Fatalf("first message %+v, want hello", hello)
	}
	owner := hello.ShardID
	if owner != "shard-a" && owner != "shard-b" {
		log.Fatalf("hello shard_id %q, want one of the configured shards", owner)
	}
	fmt.Printf("session pinned to ring owner %s\n", owner)

	// Same camera, second session: must land on the same shard.
	conn2 := dialStream(proxyAddr, "?camera=affine-cam")
	if h := readMsg(conn2); h.ShardID != owner {
		log.Fatalf("same-camera session landed on %q, owner is %q — affinity broken", h.ShardID, owner)
	}
	closeSession(conn2)
	fmt.Println("same-camera session landed on the same shard; affinity holds")

	for i := 0; i < 2; i++ {
		sendFrame(conn, i+1, imgs[i%len(imgs)])
		msg := readMsg(conn)
		if msg.Type != serve.MsgResult || msg.Frame != i+1 {
			log.Fatalf("frame %d: %+v, want result with tracker frame %d", i+1, msg, i+1)
		}
	}

	// Drain the owner mid-session: the relay must intercept the shard's
	// bye "drain", re-home the session and inject the resumed marker.
	var ownerProc, survivor *shard
	for i := range shards {
		if shards[i].id == owner {
			ownerProc = &shards[i]
		} else {
			survivor = &shards[i]
		}
	}
	if err := ownerProc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		log.Fatal(err)
	}
	resumed := readMsg(conn)
	if resumed.Type != serve.MsgResumed || !resumed.Resumed {
		log.Fatalf("after owner drain got %+v, want a resumed marker", resumed)
	}
	if resumed.ShardID != survivor.id {
		log.Fatalf("resumed on %q, want the survivor %q", resumed.ShardID, survivor.id)
	}
	fmt.Printf("owner drained; session resumed on %s with resumed:true\n", resumed.ShardID)

	// The replacement session is fresh: its tracker restarts at frame 1.
	sendFrame(conn, 3, imgs[0])
	msg := readMsg(conn)
	if msg.Type != serve.MsgResult || msg.Frame != 1 {
		log.Fatalf("post-resume frame: %+v, want a result from a fresh tracker (frame 1)", msg)
	}
	fmt.Println("post-resume result came from a fresh per-session tracker (frame 1, track ids restart)")
	closeSession(conn)
	if err := ownerProc.cmd.Wait(); err != nil {
		log.Fatalf("%s exit: %v", ownerProc.id, err)
	}

	drainNamed(proxyCmd, "proxy")
	drainNamed(survivor.cmd, survivor.id)

	// Spawn-mode sanity: the proxy boots its own shard children and the
	// -shard-session-* flags must reach them (a session opens and answers).
	spawnCmd, spawnAddr, err := spawnWithArgs(proxyBin, []string{
		"-addr", "127.0.0.1:0", "-spawn", "2", "-serve-bin", serverBin,
		"-size", fmt.Sprint(size), "-scale", "0.25", "-workers", "2",
		"-shard-max-sessions", "4", "-shard-session-idle", "30s", "-shard-session-inflight", "2",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spawn-mode proxy up on %s\n", spawnAddr)
	sconn := dialStream(spawnAddr, "?camera=spawn-cam")
	sh := readMsg(sconn)
	if sh.Type != serve.MsgHello || sh.MaxInflight != 2 {
		log.Fatalf("spawn-mode hello %+v, want max_inflight 2 passed through to the child shard", sh)
	}
	sendFrame(sconn, 1, imgs[0])
	if msg := readMsg(sconn); msg.Type != serve.MsgResult {
		log.Fatalf("spawn-mode frame: %+v, want a result", msg)
	}
	fmt.Println("spawn-mode shards inherited the streaming flags (max_inflight 2 on hello)")
	closeSession(sconn)
	drainNamed(spawnCmd, "spawn-mode proxy")
	fmt.Println("stream smoke (sharded) passed")
}

// renderFrames pre-renders one camera's synthetic frames.
func renderFrames(size, n int, seed uint64) []*imgproc.Image {
	cam := pipeline.NewSimCamera(dataset.DefaultConfig(size), n, seed)
	var imgs []*imgproc.Image
	for {
		f, ok := cam.Next()
		if !ok {
			break
		}
		imgs = append(imgs, f.Image)
	}
	return imgs
}

func dialStream(addr, query string) *ws.Conn {
	conn, err := ws.Dial(addr, "/stream"+query, nil, 10*time.Second)
	if err != nil {
		log.Fatalf("dial /stream%s: %v", query, err)
	}
	// A wedged walk should fail loudly, not hang the smoke target.
	_ = conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	return conn
}

func readMsg(conn *ws.Conn) serve.StreamMessage {
	raw, err := conn.ReadMessage()
	if err != nil {
		log.Fatalf("read stream message: %v", err)
	}
	var msg serve.StreamMessage
	if err := json.Unmarshal(raw, &msg); err != nil {
		log.Fatalf("decode %q: %v", raw, err)
	}
	return msg
}

func sendFrame(conn *ws.Conn, seq int, img *imgproc.Image) {
	body, err := json.Marshal(serve.StreamFrame{Seq: seq, Width: img.W, Height: img.H, Pixels: img.Pix})
	if err != nil {
		log.Fatal(err)
	}
	if err := conn.WriteMessage(body); err != nil {
		log.Fatalf("send frame %d: %v", seq, err)
	}
}

// closeSession performs the graceful goodbye: close frame out, drain until
// the peer's close comes back.
func closeSession(conn *ws.Conn) {
	if err := conn.WriteClose(1000, "done"); err != nil {
		log.Fatalf("write close: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	_ = conn.SetReadDeadline(deadline)
	for {
		if _, err := conn.ReadMessage(); err != nil {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("peer never answered the close frame")
		}
	}
}

// spawnWithArgs boots a binary that announces "listening on HOST:PORT" on
// stdout and returns the process plus the parsed address.
func spawnWithArgs(bin string, args []string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrCh := make(chan string, 1)
	go func(stdout io.ReadCloser) {
		sc := bufio.NewScanner(stdout)
		announced := false
		for sc.Scan() {
			if line := sc.Text(); !announced && strings.HasPrefix(line, "listening on ") {
				addrCh <- strings.TrimPrefix(line, "listening on ")
				announced = true
			}
		}
		if !announced {
			close(addrCh)
		}
	}(stdout)
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			_ = cmd.Process.Kill()
			return nil, "", fmt.Errorf("process exited before announcing its port")
		}
		return cmd, addr, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("timed out waiting for the listen announcement")
	}
}

// drainNamed SIGTERMs one spawned process and waits for a clean exit.
func drainNamed(cmd *exec.Cmd, name string) {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		log.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		log.Fatalf("%s exit: %v", name, err)
	}
	fmt.Printf("%s drained and exited cleanly\n", name)
}
