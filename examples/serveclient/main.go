// Command serveclient is the walkthrough client for the detection service
// (internal/serve, cmd/dronet-serve) and the driver behind `make
// serve-smoke`: it boots a dronet-serve binary on a random loopback port
// (or talks to an existing server via -url), exercises every endpoint —
// JSON detect, raw PNG detect, /healthz, /metrics — validates the
// responses, and asks the server to drain and exit. With -precision int8
// the spawned server quantizes at startup and the client asserts the
// precision label on /healthz, smoke-testing the whole quantized path.
//
// With -models the spawned server hosts a routed registry
// (name=model:size:precision[:maxalt][:weight] entries) and the client
// walks the routing matrix instead: explicit ?model= and X-Model
// selection, the altitude default route, the 404 on an unknown model, and
// the per-model blocks on /healthz and /metrics.
//
// With -swap (the driver behind `make swap-smoke`) the spawned server
// additionally binds its admin listener and the client exercises the live
// model lifecycle under background traffic: hot-add a model, serve from
// it, atomically swap its weights (the response generation must advance),
// swap the primary model while requests are in flight, then remove the
// added model — all without a single non-2xx/429 data-plane response.
//
// With -sharded (the driver behind `make shard-smoke`) the client spawns
// two shard servers plus a dronet-proxy (-proxy) and walks the sharded
// tier: camera affinity via ?camera= and X-Camera-ID, fleet /metrics
// aggregation with shard identity labels, then kill -9 of one shard under
// traffic — every response must be 200/429/503, the proxy must eject the
// victim, and its cameras must fail over to the survivor.
//
// Usage:
//
//	go build -o bin/dronet-serve ./cmd/dronet-serve
//	go run ./examples/serveclient -server bin/dronet-serve
//	go run ./examples/serveclient -server bin/dronet-serve \
//	    -models "low=dronet:64:int8:150,high=dronet:96:fp32"
//	go run ./examples/serveclient -server bin/dronet-serve -size 64 -swap
//
// or against a running server:
//
//	go run ./examples/serveclient -url http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"image/png"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/imgproc"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serveclient: ")
	url := flag.String("url", "", "base URL of a running dronet-serve (skips spawning)")
	server := flag.String("server", "", "path to a dronet-serve binary to spawn on a random port")
	size := flag.Int("size", 96, "frame size to send (and model input when spawning)")
	frames := flag.Int("frames", 4, "number of JSON frames to send")
	precision := flag.String("precision", "fp32", "server precision to spawn (fp32 or int8)")
	modelsFlag := flag.String("models", "", "spawn a routed multi-model server with this -models spec and walk the routing matrix")
	swapFlag := flag.Bool("swap", false, "exercise the live model lifecycle (hot add/swap/remove under traffic) via the spawned server's admin listener")
	shardedFlag := flag.Bool("sharded", false, "exercise the sharded tier: spawn two shard servers plus a dronet-proxy and walk affinity, fleet metrics and kill -9 failover")
	proxyBin := flag.String("proxy", "", "path to a dronet-proxy binary (required with -sharded)")
	flag.Parse()

	if *shardedFlag {
		if *server == "" || *proxyBin == "" {
			log.Fatal("-sharded needs -server and -proxy (it spawns the shard fleet and the proxy)")
		}
		shardedWalk(*server, *proxyBin, *size, *precision)
		fmt.Println("OK")
		return
	}

	if *swapFlag {
		if *server == "" {
			log.Fatal("-swap needs -server (it drives the spawned server's admin listener)")
		}
		spec := *modelsFlag
		if spec == "" {
			spec = fmt.Sprintf("default=dronet:%d:%s", *size, *precision)
		}
		cmd, dataURL, adminURL, err := spawnAdmin(*server, *size, *precision, spec)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = cmd.Process.Kill() }()
		swapWalk(dataURL, adminURL, spec)
		drain(cmd)
		fmt.Println("OK")
		return
	}

	var cmd *exec.Cmd
	if *url == "" {
		if *server == "" {
			log.Fatal("need -url or -server")
		}
		var err error
		cmd, *url, err = spawn(*server, *size, *precision, *modelsFlag)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = cmd.Process.Kill() }()
	}

	if *modelsFlag != "" {
		if cmd == nil {
			log.Fatal("-models needs -server (it validates the spawned registry)")
		}
		walkRouted(*url, *modelsFlag)
		drain(cmd)
		fmt.Println("OK")
		return
	}

	cam := pipeline.NewSimCamera(dataset.DefaultConfig(*size), *frames, 42)

	// 1. JSON endpoint: planar float pixels.
	total := 0
	for i := 0; i < *frames; i++ {
		f, ok := cam.Next()
		if !ok {
			break
		}
		resp := postJSON(*url, f.Image, f.Altitude)
		total += len(resp.Detections)
		fmt.Printf("frame %d: %d detections (batch %d, %.1f ms)\n",
			i, len(resp.Detections), resp.BatchSize, resp.LatencyMs)
	}
	fmt.Printf("JSON endpoint: %d detections over %d frames\n", total, *frames)

	// 2. Raw endpoint: the same scene as a PNG body.
	pngCam := pipeline.NewSimCamera(dataset.DefaultConfig(*size), 1, 43)
	f, _ := pngCam.Next()
	var buf bytes.Buffer
	if err := png.Encode(&buf, f.Image.ToNRGBA()); err != nil {
		log.Fatal(err)
	}
	raw := post(*url+fmt.Sprintf("/detect/raw?altitude=%.1f", f.Altitude), "image/png", buf.Bytes())
	fmt.Printf("raw PNG endpoint: %d detections (batch %d)\n", len(raw.Detections), raw.BatchSize)

	// 3. Health and metrics (both label the active precision).
	var health map[string]any
	getJSON(*url+"/healthz", &health)
	if health["status"] != "ok" {
		log.Fatalf("healthz: %v", health)
	}
	if cmd != nil && health["precision"] != *precision {
		log.Fatalf("healthz precision = %v, want %v", health["precision"], *precision)
	}
	var stats serve.Stats
	getJSON(*url+"/metrics", &stats)
	fmt.Printf("metrics: %d completed, mean batch %.2f, p50 %.2f ms, p99 %.2f ms, %.1f FPS aggregate\n",
		stats.Completed, stats.MeanBatchSize, stats.LatencyP50Ms, stats.LatencyP99Ms, stats.AggregateFPS)
	if stats.Completed == 0 {
		log.Fatal("metrics report zero completed requests")
	}

	// 4. Graceful drain when we own the server process.
	if cmd != nil {
		drain(cmd)
	}
	fmt.Println("OK")
}

// drain asks the spawned server to shut down gracefully and waits for it.
func drain(cmd *exec.Cmd) {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		log.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		log.Fatalf("server exit: %v", err)
	}
	fmt.Println("server drained and exited cleanly")
}

// walkRouted validates a routed spawn end to end: per-model explicit
// selection by query and header (the response must name the serving
// model), altitude-band default routing, the unknown-model 404, and the
// per-model blocks of /healthz and /metrics.
func walkRouted(url, spec string) {
	specs, err := serve.ParseModelSpecs(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Per-model explicit routing, alternating query and header selection.
	for i, sp := range specs {
		cam := pipeline.NewSimCamera(dataset.DefaultConfig(sp.Size), 2, uint64(50+i))
		for j := 0; ; j++ {
			f, ok := cam.Next()
			if !ok {
				break
			}
			target := url + "/detect?model=" + sp.Name
			var header http.Header
			if j%2 == 1 {
				target = url + "/detect"
				header = http.Header{"X-Model": []string{sp.Name}}
			}
			resp := postWithHeader(target, "application/json", marshalFrame(f.Image, 0), header)
			if resp.Model != sp.Name {
				log.Fatalf("request for %s served by %q", sp.Name, resp.Model)
			}
			fmt.Printf("model %s frame %d: %d detections (batch %d)\n", sp.Name, j, len(resp.Detections), resp.BatchSize)
		}
	}

	// Altitude default route: probe the interior of every bounded band —
	// between the previous band's ceiling and this one's — and expect that
	// band's model, without naming it. (A band's floor is the next-lower
	// ceiling, so probing MaxAltitude/2 would land in a LOWER band whenever
	// two bounded bands are configured.)
	bounded := make([]serve.ModelSpec, 0, len(specs))
	for _, sp := range specs {
		if sp.MaxAltitude > 0 {
			bounded = append(bounded, sp)
		}
	}
	sort.Slice(bounded, func(i, j int) bool { return bounded[i].MaxAltitude < bounded[j].MaxAltitude })
	floor := 0.0
	for _, sp := range bounded {
		alt := (floor + sp.MaxAltitude) / 2
		cam := pipeline.NewSimCamera(dataset.DefaultConfig(sp.Size), 1, 60)
		f, _ := cam.Next()
		resp := postWithHeader(url+"/detect", "application/json", marshalFrame(f.Image, alt), nil)
		if resp.Model != sp.Name {
			log.Fatalf("altitude %.0fm routed to %q, want %s", alt, resp.Model, sp.Name)
		}
		fmt.Printf("altitude %.0fm routed to %s\n", alt, resp.Model)
		floor = sp.MaxAltitude
	}

	// Unknown model: 404, not a silent reroute.
	cam := pipeline.NewSimCamera(dataset.DefaultConfig(specs[0].Size), 1, 61)
	f, _ := cam.Next()
	r, err := http.Post(url+"/detect?model=no-such-model", "application/json", bytes.NewReader(marshalFrame(f.Image, 0)))
	if err != nil {
		log.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		log.Fatalf("unknown model: status %d, want 404", r.StatusCode)
	}
	fmt.Println("unknown model rejected with 404")

	// Health and metrics carry one labelled block per model.
	var health struct {
		Status       string                    `json:"status"`
		DefaultModel string                    `json:"default_model"`
		Models       map[string]map[string]any `json:"models"`
	}
	getJSON(url+"/healthz", &health)
	if health.Status != "ok" || health.DefaultModel != specs[0].Name {
		log.Fatalf("healthz: %+v", health)
	}
	var rep serve.MetricsReport
	getJSON(url+"/metrics", &rep)
	for _, sp := range specs {
		h, ok := health.Models[sp.Name]
		if !ok || h["precision"] != sp.Precision {
			log.Fatalf("healthz models[%s] = %v, want precision %s", sp.Name, h, sp.Precision)
		}
		st, ok := rep.Models[sp.Name]
		if !ok || st.Completed == 0 {
			log.Fatalf("metrics models[%s]: ok=%v completed=%d", sp.Name, ok, st.Completed)
		}
		fmt.Printf("metrics %s: %d completed, %.1f FPS aggregate\n", sp.Name, st.Completed, st.AggregateFPS)
	}
	if rep.Completed == 0 {
		log.Fatal("fleet metrics report zero completed requests")
	}
}

// swapWalk drives one full live-lifecycle pass against the admin listener
// while a background client hammers the data plane: every data-plane
// response throughout must be 200 or 429 — an add, two weight swaps, and a
// remove may never surface as a 5xx or a dropped connection.
func swapWalk(dataURL, adminURL, spec string) {
	specs, err := serve.ParseModelSpecs(spec)
	if err != nil {
		log.Fatal(err)
	}
	primary := specs[0]
	cam := pipeline.NewSimCamera(dataset.DefaultConfig(primary.Size), 1, 70)
	f, _ := cam.Next()
	body := marshalFrame(f.Image, 0)

	var served, shed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(dataURL+"/detect", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatalf("traffic during lifecycle churn: %v", err)
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				log.Fatalf("traffic during lifecycle churn: status %d (want 200 or 429)", resp.StatusCode)
			}
		}
	}()

	var list struct {
		Models []struct {
			Name       string `json:"name"`
			Generation uint64 `json:"generation"`
		} `json:"models"`
	}
	if code := adminJSON(http.MethodGet, adminURL+"/admin/models", "", &list); code != http.StatusOK {
		log.Fatalf("admin list: status %d", code)
	}
	if len(list.Models) != len(specs) {
		log.Fatalf("admin list: %d models, spawned with %d", len(list.Models), len(specs))
	}
	fmt.Printf("admin: %d models hosted\n", len(list.Models))

	// Hot add, then serve from the new pool by explicit selection.
	hotSpec := fmt.Sprintf("hot=dronet:%d:fp32::2", primary.Size)
	var added struct {
		Name       string `json:"name"`
		Generation uint64 `json:"generation"`
	}
	if code := adminJSON(http.MethodPost, adminURL+"/admin/models", `{"spec": "`+hotSpec+`"}`, &added); code != http.StatusCreated {
		log.Fatalf("hot add: status %d", code)
	}
	resp := post(dataURL+"/detect?model=hot", "application/json", body)
	if resp.Model != "hot" || resp.Generation != added.Generation {
		log.Fatalf("hot-added model served model=%q gen=%d, want hot gen %d", resp.Model, resp.Generation, added.Generation)
	}
	fmt.Printf("hot add: model %s serving at generation %d\n", added.Name, added.Generation)

	// Atomic weight swap of the added model: generation must advance and
	// the data plane must serve the new pool.
	var swapped struct {
		Generation    uint64 `json:"generation"`
		OldGeneration uint64 `json:"old_generation"`
	}
	if code := adminJSON(http.MethodPut, adminURL+"/admin/models/hot", `{"spec": "`+hotSpec+`"}`, &swapped); code != http.StatusOK {
		log.Fatalf("swap hot: status %d", code)
	}
	if swapped.OldGeneration != added.Generation || swapped.Generation <= swapped.OldGeneration {
		log.Fatalf("swap hot: generations %+v (added at %d)", swapped, added.Generation)
	}
	resp = post(dataURL+"/detect?model=hot", "application/json", body)
	if resp.Generation != swapped.Generation {
		log.Fatalf("post-swap response generation %d, want %d", resp.Generation, swapped.Generation)
	}
	fmt.Printf("swap: hot advanced generation %d -> %d\n", swapped.OldGeneration, swapped.Generation)

	// Swap the primary model too — this is the pool the background traffic
	// is riding, so it proves drain-then-retire under live load.
	if code := adminJSON(http.MethodPut, adminURL+"/admin/models/"+primary.Name, `{"spec": "`+primary.String()+`"}`, &swapped); code != http.StatusOK {
		log.Fatalf("swap %s: status %d", primary.Name, code)
	}
	fmt.Printf("swap: %s advanced generation %d -> %d under traffic\n", primary.Name, swapped.OldGeneration, swapped.Generation)

	// Retire the added model; explicit selection must 404 afterwards.
	if code := adminJSON(http.MethodDelete, adminURL+"/admin/models/hot", "", nil); code != http.StatusOK {
		log.Fatalf("remove hot: status %d", code)
	}
	r, err := http.Post(dataURL+"/detect?model=hot", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		log.Fatalf("removed model still routable: status %d, want 404", r.StatusCode)
	}

	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		log.Fatal("background traffic served zero requests during the lifecycle walk")
	}
	fmt.Printf("swap smoke: %d served, %d shed, zero failures across the lifecycle\n", served.Load(), shed.Load())
}

// shardedWalk is the driver behind `make shard-smoke`: it spawns two
// dronet-serve shards (labelled shard0/shard1), fronts them with a spawned
// dronet-proxy, and walks the sharded tier end to end — camera affinity by
// query and header, fleet /healthz and /metrics aggregation, then the
// failure drill: kill -9 one shard under traffic and require that clients
// only ever see 200/429/503 while the victim's cameras fail over and the
// proxy ejects it from the fleet view.
func shardedWalk(serverBin, proxyBin string, size int, precision string) {
	type shardProc struct {
		id   string
		addr string
		cmd  *exec.Cmd
	}
	shards := make([]shardProc, 2)
	for i := range shards {
		id := fmt.Sprintf("shard%d", i)
		cmd, addr, err := spawnWithArgs(serverBin, []string{
			"-addr", "127.0.0.1:0",
			"-size", fmt.Sprint(size),
			"-scale", "0.25",
			"-workers", "2",
			"-max-batch", "4",
			"-max-wait", "5ms",
			"-precision", precision,
			"-shard-id", id,
		})
		if err != nil {
			log.Fatalf("spawn %s: %v", id, err)
		}
		defer func() { _ = cmd.Process.Kill() }()
		shards[i] = shardProc{id: id, addr: addr, cmd: cmd}
		fmt.Printf("spawned %s on %s\n", id, addr)
	}
	proxyCmd, proxyAddr, err := spawnWithArgs(proxyBin, []string{
		"-addr", "127.0.0.1:0",
		"-shards", shards[0].addr + "," + shards[1].addr,
		"-health-interval", "50ms",
		"-fail-threshold", "2",
	})
	if err != nil {
		log.Fatalf("spawn proxy: %v", err)
	}
	defer func() { _ = proxyCmd.Process.Kill() }()
	url := "http://" + proxyAddr
	fmt.Printf("spawned proxy on %s\n", proxyAddr)

	cam := pipeline.NewSimCamera(dataset.DefaultConfig(size), 1, 80)
	f, _ := cam.Next()
	body := marshalFrame(f.Image, 0)

	// Camera affinity: every camera maps to a stable shard, the query and
	// header spellings agree, and with 16 cameras both shards see traffic.
	const cameras = 16
	owner := make(map[string]string, cameras)
	hit := make(map[string]int, 2)
	for i := 0; i < cameras; i++ {
		id := fmt.Sprintf("smoke-cam-%d", i)
		code, shard := postStatus(url+"/detect?camera="+id, body, nil)
		if code != http.StatusOK || shard == "" {
			log.Fatalf("camera %s: status %d, shard %q", id, code, shard)
		}
		code2, shard2 := postStatus(url+"/detect", body, http.Header{"X-Camera-ID": []string{id}})
		if code2 != http.StatusOK || shard2 != shard {
			log.Fatalf("camera %s: header spelling landed on %q, query on %q", id, shard2, shard)
		}
		owner[id] = shard
		hit[shard]++
	}
	if len(hit) != 2 {
		log.Fatalf("16 cameras all landed on one shard: %v", hit)
	}
	fmt.Printf("camera affinity: %d cameras pinned across %d shards %v\n", cameras, len(hit), hit)

	// Raw-PNG forwarding with altitude preserved through the proxy.
	var buf bytes.Buffer
	if err := png.Encode(&buf, f.Image.ToNRGBA()); err != nil {
		log.Fatal(err)
	}
	raw := post(url+"/detect/raw?altitude=42.0", "image/png", buf.Bytes())
	fmt.Printf("raw PNG via proxy: %d detections (batch %d)\n", len(raw.Detections), raw.BatchSize)

	// Fleet metrics: per-shard labelled blocks plus a rollup that sums them.
	var fleet struct {
		Completed  uint64 `json:"completed"`
		LiveShards int    `json:"live_shards"`
		Shards     map[string]struct {
			ShardID string `json:"shard_id"`
			Metrics *struct {
				Completed uint64 `json:"completed"`
			} `json:"metrics"`
		} `json:"shards"`
	}
	getJSON(url+"/metrics", &fleet)
	if fleet.LiveShards != 2 || len(fleet.Shards) != 2 {
		log.Fatalf("fleet metrics: live=%d shards=%d, want 2/2", fleet.LiveShards, len(fleet.Shards))
	}
	var sum uint64
	labels := make(map[string]bool, 2)
	for _, sm := range fleet.Shards {
		labels[sm.ShardID] = true
		if sm.Metrics != nil {
			sum += sm.Metrics.Completed
		}
	}
	if !labels["shard0"] || !labels["shard1"] {
		log.Fatalf("fleet metrics missing shard identity labels: %v", labels)
	}
	if fleet.Completed != sum {
		log.Fatalf("fleet rollup completed %d != per-shard sum %d", fleet.Completed, sum)
	}
	fmt.Printf("fleet metrics: rollup %d completed == per-shard sum, labels shard0+shard1 present\n", fleet.Completed)

	// Failure drill: kill -9 the owner of smoke-cam-0 under traffic.
	victim := owner["smoke-cam-0"]
	var victimProc *shardProc
	for i := range shards {
		if shards[i].id == victim {
			victimProc = &shards[i]
		}
	}
	if victimProc == nil {
		log.Fatalf("victim shard %q not among spawned shards", victim)
	}
	var served, shed, noShard atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("smoke-cam-%d", (c*5+i)%cameras)
				code, _ := postStatus(url+"/detect?camera="+id, body, nil)
				switch code {
				case http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusServiceUnavailable:
					noShard.Add(1)
				default:
					log.Fatalf("traffic during shard kill: status %d (want 200, 429 or 503)", code)
				}
			}
		}(c)
	}
	time.Sleep(100 * time.Millisecond)
	if err := victimProc.cmd.Process.Kill(); err != nil {
		log.Fatal(err)
	}
	_, _ = victimProc.cmd.Process.Wait()
	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		log.Fatal("no request succeeded around the shard kill")
	}
	fmt.Printf("killed %s under traffic: %d served, %d shed, %d no-shard, zero other statuses\n",
		victim, served.Load(), shed.Load(), noShard.Load())

	// The proxy must eject the victim and keep every camera routable on the
	// survivor.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var health struct {
			Status string `json:"status"`
			Live   int    `json:"live_shards"`
		}
		getJSON(url+"/healthz", &health)
		if health.Status == "degraded" && health.Live == 1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("proxy never ejected the killed shard: %+v", health)
		}
		time.Sleep(25 * time.Millisecond)
	}
	for i := 0; i < cameras; i++ {
		id := fmt.Sprintf("smoke-cam-%d", i)
		code, shard := postStatus(url+"/detect?camera="+id, body, nil)
		if code != http.StatusOK || shard == victim {
			log.Fatalf("post-kill camera %s: status %d via %q (victim %q)", id, code, shard, victim)
		}
	}
	fmt.Printf("proxy ejected %s; all %d cameras fail over to the survivor\n", victim, cameras)

	// Graceful teardown: proxy first, then the surviving shard.
	drainNamed(proxyCmd, "proxy")
	for i := range shards {
		if shards[i].id != victim {
			drainNamed(shards[i].cmd, shards[i].id)
		}
	}
}

// spawnWithArgs boots a binary that announces "listening on HOST:PORT" on
// stdout and returns the process plus the parsed address.
func spawnWithArgs(bin string, args []string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		announced := false
		for sc.Scan() {
			if line := sc.Text(); !announced && strings.HasPrefix(line, "listening on ") {
				addrCh <- strings.TrimPrefix(line, "listening on ")
				announced = true
			}
		}
		if !announced {
			close(addrCh)
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			_ = cmd.Process.Kill()
			return nil, "", fmt.Errorf("process exited before announcing its port")
		}
		return cmd, addr, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("timed out waiting for the listen announcement")
	}
}

// postStatus posts a detect body and returns the status code plus the
// proxy's X-Dronet-Shard attribution, without failing on non-200 — the
// chaos legs assert on the full status distribution.
func postStatus(url string, body []byte, extra http.Header) (int, string) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Dronet-Shard")
}

// drainNamed SIGTERMs one spawned process and waits for a clean exit.
func drainNamed(cmd *exec.Cmd, name string) {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		log.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		log.Fatalf("%s exit: %v", name, err)
	}
	fmt.Printf("%s drained and exited cleanly\n", name)
}

// adminJSON issues one admin request with an optional JSON body, decodes
// the response into out when non-nil, and returns the status code.
func adminJSON(method, url, body string, out any) int {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatalf("%s %s: bad response JSON: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func marshalFrame(img *imgproc.Image, altitude float64) []byte {
	body, err := json.Marshal(serve.DetectRequest{
		Width: img.W, Height: img.H, Pixels: img.Pix, Altitude: altitude,
	})
	if err != nil {
		log.Fatal(err)
	}
	return body
}

// spawn boots the server binary on a random loopback port — single-model
// at the given precision, or a routed registry when modelsSpec is set —
// and returns the process plus the base URL parsed from its "listening on"
// line.
func spawn(bin string, size int, precision, modelsSpec string) (*exec.Cmd, string, error) {
	cmd, dataURL, _, err := spawnAddrs(bin, size, precision, modelsSpec, false)
	return cmd, dataURL, err
}

// spawnAdmin boots the server with its admin listener bound on a second
// random loopback port, returning both base URLs.
func spawnAdmin(bin string, size int, precision, modelsSpec string) (*exec.Cmd, string, string, error) {
	return spawnAddrs(bin, size, precision, modelsSpec, true)
}

func spawnAddrs(bin string, size int, precision, modelsSpec string, admin bool) (*exec.Cmd, string, string, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-size", fmt.Sprint(size),
		"-scale", "0.25",
		"-workers", "2",
		"-max-batch", "4",
		"-max-wait", "5ms",
		"-precision", precision,
	}
	if modelsSpec != "" {
		args = append(args, "-models", modelsSpec)
	}
	if admin {
		args = append(args, "-admin", "127.0.0.1:0")
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", "", err
	}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	lineCh := make(chan [2]string, 1)
	go func() {
		// The server announces the data listener first, then (when bound)
		// the admin listener on the next line.
		var dataAddr, adminAddr string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "listening on "):
				dataAddr = strings.TrimPrefix(line, "listening on ")
			case strings.HasPrefix(line, "admin listening on "):
				adminAddr = strings.TrimPrefix(line, "admin listening on ")
			}
			if dataAddr != "" && (!admin || adminAddr != "") {
				lineCh <- [2]string{dataAddr, adminAddr}
				break
			}
		}
		close(lineCh)
	}()
	select {
	case addrs, ok := <-lineCh:
		if !ok || addrs[0] == "" {
			_ = cmd.Process.Kill()
			return nil, "", "", fmt.Errorf("server exited before announcing its port")
		}
		adminURL := ""
		if addrs[1] != "" {
			adminURL = "http://" + addrs[1]
		}
		return cmd, "http://" + addrs[0], adminURL, nil
	case <-deadline:
		_ = cmd.Process.Kill()
		return nil, "", "", fmt.Errorf("timed out waiting for the server to listen")
	}
}

func postJSON(url string, img *imgproc.Image, altitude float64) serve.DetectResponse {
	body, err := json.Marshal(serve.DetectRequest{
		Width: img.W, Height: img.H, Pixels: img.Pix, Altitude: altitude,
	})
	if err != nil {
		log.Fatal(err)
	}
	return post(url+"/detect", "application/json", body)
}

func post(url, contentType string, body []byte) serve.DetectResponse {
	return postWithHeader(url, contentType, body, nil)
}

// postWithHeader posts a body with optional extra headers (the X-Model
// routing selector) and decodes the detection response. Backpressure
// answers (429/503) carrying Retry-After are honored with a jittered wait
// — the well-behaved-client side of the server's shedding contract — for
// a bounded number of retries before giving up.
func postWithHeader(url, contentType string, body []byte, extra http.Header) serve.DetectResponse {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		for k, vs := range extra {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		if d, ok := retryAfter(resp); ok && attempt < 3 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Full jitter in [d/2, d) keeps a fleet of clients from
			// re-arriving in lockstep when the server sheds them together.
			time.Sleep(d/2 + time.Duration(rand.Int63n(int64(d/2)+1)))
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("POST %s: %s", url, resp.Status)
		}
		var out serve.DetectResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatalf("POST %s: bad response JSON: %v", url, err)
		}
		if out.Detections == nil {
			log.Fatalf("POST %s: response missing detections array", url)
		}
		return out
	}
}

// retryAfter reports whether the response is a retryable backpressure
// answer (429/503 with a Retry-After delay in seconds) and the advertised
// wait.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return 0, false
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}
