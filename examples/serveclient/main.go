// Command serveclient is the walkthrough client for the detection service
// (internal/serve, cmd/dronet-serve) and the driver behind `make
// serve-smoke`: it boots a dronet-serve binary on a random loopback port
// (or talks to an existing server via -url), exercises every endpoint —
// JSON detect, raw PNG detect, /healthz, /metrics — validates the
// responses, and asks the server to drain and exit. With -precision int8
// the spawned server quantizes at startup and the client asserts the
// precision label on /healthz, smoke-testing the whole quantized path.
//
// Usage:
//
//	go build -o bin/dronet-serve ./cmd/dronet-serve
//	go run ./examples/serveclient -server bin/dronet-serve
//
// or against a running server:
//
//	go run ./examples/serveclient -url http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"image/png"
	"log"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/imgproc"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serveclient: ")
	url := flag.String("url", "", "base URL of a running dronet-serve (skips spawning)")
	server := flag.String("server", "", "path to a dronet-serve binary to spawn on a random port")
	size := flag.Int("size", 96, "frame size to send (and model input when spawning)")
	frames := flag.Int("frames", 4, "number of JSON frames to send")
	precision := flag.String("precision", "fp32", "server precision to spawn (fp32 or int8)")
	flag.Parse()

	var cmd *exec.Cmd
	if *url == "" {
		if *server == "" {
			log.Fatal("need -url or -server")
		}
		var err error
		cmd, *url, err = spawn(*server, *size, *precision)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = cmd.Process.Kill() }()
	}

	cam := pipeline.NewSimCamera(dataset.DefaultConfig(*size), *frames, 42)

	// 1. JSON endpoint: planar float pixels.
	total := 0
	for i := 0; i < *frames; i++ {
		f, ok := cam.Next()
		if !ok {
			break
		}
		resp := postJSON(*url, f.Image, f.Altitude)
		total += len(resp.Detections)
		fmt.Printf("frame %d: %d detections (batch %d, %.1f ms)\n",
			i, len(resp.Detections), resp.BatchSize, resp.LatencyMs)
	}
	fmt.Printf("JSON endpoint: %d detections over %d frames\n", total, *frames)

	// 2. Raw endpoint: the same scene as a PNG body.
	pngCam := pipeline.NewSimCamera(dataset.DefaultConfig(*size), 1, 43)
	f, _ := pngCam.Next()
	var buf bytes.Buffer
	if err := png.Encode(&buf, f.Image.ToNRGBA()); err != nil {
		log.Fatal(err)
	}
	raw := post(*url+fmt.Sprintf("/detect/raw?altitude=%.1f", f.Altitude), "image/png", buf.Bytes())
	fmt.Printf("raw PNG endpoint: %d detections (batch %d)\n", len(raw.Detections), raw.BatchSize)

	// 3. Health and metrics (both label the active precision).
	var health map[string]any
	getJSON(*url+"/healthz", &health)
	if health["status"] != "ok" {
		log.Fatalf("healthz: %v", health)
	}
	if cmd != nil && health["precision"] != *precision {
		log.Fatalf("healthz precision = %v, want %v", health["precision"], *precision)
	}
	var stats serve.Stats
	getJSON(*url+"/metrics", &stats)
	fmt.Printf("metrics: %d completed, mean batch %.2f, p50 %.2f ms, p99 %.2f ms, %.1f FPS aggregate\n",
		stats.Completed, stats.MeanBatchSize, stats.LatencyP50Ms, stats.LatencyP99Ms, stats.AggregateFPS)
	if stats.Completed == 0 {
		log.Fatal("metrics report zero completed requests")
	}

	// 4. Graceful drain when we own the server process.
	if cmd != nil {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			log.Fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			log.Fatalf("server exit: %v", err)
		}
		fmt.Println("server drained and exited cleanly")
	}
	fmt.Println("OK")
}

// spawn boots the server binary on a random loopback port at the given
// precision and returns the process plus the base URL parsed from its
// "listening on" line.
func spawn(bin string, size int, precision string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-size", fmt.Sprint(size),
		"-scale", "0.25",
		"-workers", "2",
		"-max-batch", "4",
		"-max-wait", "5ms",
		"-precision", precision,
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "listening on ") {
				lineCh <- strings.TrimPrefix(sc.Text(), "listening on ")
				break
			}
		}
		close(lineCh)
	}()
	select {
	case addr, ok := <-lineCh:
		if !ok || addr == "" {
			_ = cmd.Process.Kill()
			return nil, "", fmt.Errorf("server exited before announcing its port")
		}
		return cmd, "http://" + addr, nil
	case <-deadline:
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("timed out waiting for the server to listen")
	}
}

func postJSON(url string, img *imgproc.Image, altitude float64) serve.DetectResponse {
	body, err := json.Marshal(serve.DetectRequest{
		Width: img.W, Height: img.H, Pixels: img.Pix, Altitude: altitude,
	})
	if err != nil {
		log.Fatal(err)
	}
	return post(url+"/detect", "application/json", body)
}

func post(url, contentType string, body []byte) serve.DetectResponse {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	var out serve.DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatalf("POST %s: bad response JSON: %v", url, err)
	}
	if out.Detections == nil {
		log.Fatalf("POST %s: response missing detections array", url)
	}
	return out
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}
