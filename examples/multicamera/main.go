// Multi-camera fleet monitoring: one trained detector serving several UAV
// camera streams at once. The example trains the demo-scale DroNet, then
// hands four simulated cameras (different city blocks, different traffic
// densities) to the concurrent inference engine — each worker owns a
// weight-sharing network replica and a per-stream vehicle tracker — and
// compares the fleet's aggregate throughput against processing the same
// streams one after another.
//
// Run with:
//
//	go run ./examples/multicamera
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/demo"
	"repro/internal/engine"
	"repro/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	demo.Banner(os.Stdout, "multi-camera fleet monitoring")

	const (
		size    = 128
		streams = 4
		frames  = 24
	)
	det, _, err := demo.TrainDemoDetector(size, 64, 1200, 11, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector trained; launching %d camera streams\n\n", streams)

	// Each camera watches a different scene: the seed varies the layout and
	// the density band varies the traffic load per stream.
	sources := func() []pipeline.Source {
		srcs := make([]pipeline.Source, streams)
		for i := range srcs {
			cfg := demo.SceneConfig(size)
			cfg.VehiclesMin = 1 + i
			cfg.VehiclesMax = 2 + 2*i
			srcs[i] = pipeline.NewSimCamera(cfg, frames, uint64(42+i))
		}
		return srcs
	}

	run := func(workers int) engine.FleetStats {
		eng, err := engine.New(det.Net, engine.Config{
			Workers:   workers,
			Thresh:    det.Thresh,
			NMSThresh: det.NMSThresh,
			Track:     true,
		})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := eng.Run(sources())
		if err != nil {
			log.Fatal(err)
		}
		return stats
	}

	serial := run(1)
	fmt.Printf("serial   %s\n\n", serial)

	workers := runtime.NumCPU()
	if workers > streams {
		workers = streams
	}
	parallel := run(workers)
	fmt.Printf("parallel %s\n\n", parallel)

	if serial.Detections != parallel.Detections {
		log.Fatalf("determinism violated: serial found %d detections, parallel %d",
			serial.Detections, parallel.Detections)
	}
	fmt.Printf("identical detections (%d) and unique vehicles (%d) on both runs\n",
		parallel.Detections, parallel.UniqueVehicles)
	if serial.AggregateFPS > 0 {
		fmt.Printf("fleet speedup: %.2fx aggregate FPS with %d workers\n",
			parallel.AggregateFPS/serial.AggregateFPS, parallel.Workers)
	}
}
