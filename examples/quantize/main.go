// Quantize: the paper's §V future work — "applying finer-level
// optimizations to reduce bitwidth precisions". The example trains the demo
// DroNet, folds its batch normalization into the convolution weights,
// quantizes it to INT8 with per-channel weight scales, and compares the
// float32 and INT8 paths on accuracy (held-out scenes) and on the platform
// model's predicted throughput for the paper's three boards.
//
// Run with:
//
//	go run ./examples/quantize
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/demo"
	"repro/internal/detect"
	"repro/internal/eval"
	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	demo.Banner(os.Stdout, "INT8 quantization (§V future work)")

	const size = 128
	det, _, err := demo.TrainDemoDetector(size, 64, 1200, 47, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("float32 detector trained")

	// Calibrate activation scales on a few fresh scenes.
	calibScenes := dataset.Generate(demo.SceneConfig(size), 4, 1234)
	calib := make([]*tensor.Tensor, 0, len(calibScenes.Items))
	for _, it := range calibScenes.Items {
		calib = append(calib, it.Image.ToTensor())
	}
	qnet, err := quant.Quantize(det.Net, calib)
	if err != nil {
		log.Fatal(err)
	}
	var floatBytes int64
	for _, p := range det.Net.Params() {
		floatBytes += int64(p.W.Len()) * 4
	}
	fmt.Printf("weights: float32 %d bytes -> INT8 %d bytes (%.1fx smaller)\n",
		floatBytes, qnet.WeightBytes(), float64(floatBytes)/float64(qnet.WeightBytes()))

	// Accuracy comparison on held-out scenes.
	val := dataset.Generate(demo.SceneConfig(size), 12, 4321)
	var fc, qc eval.Counter
	for _, item := range val.Items {
		truthBoxes := make([]detect.Box, len(item.Truths))
		for i, t := range item.Truths {
			truthBoxes[i] = t.Box
		}
		x := item.Image.ToTensor()
		fdets, err := det.Net.Detect(x, det.Thresh, det.NMSThresh)
		if err != nil {
			log.Fatal(err)
		}
		fc.AddImage(fdets, truthBoxes)
		qc.AddImage(qnet.Detect(x, det.Thresh, det.NMSThresh), truthBoxes)
	}
	fmt.Println("\nheld-out accuracy:")
	fmt.Println("  float32:", fc.Metrics(0))
	fmt.Println("  int8:   ", qc.Metrics(0))

	// Platform-model throughput for the full-size DroNet, float vs INT8.
	full, err := core.NewDetector(models.DroNet, 512, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted full DroNet@512 throughput (platform model):")
	for _, p := range platform.All() {
		f := p.Predict(full.Net).FPS
		q := quant.PredictFPS(p, full.Net)
		fmt.Printf("  %-28s float32 %6.2f FPS -> INT8 %6.2f FPS (%.2fx)\n", p.Name, f, q, q/f)
	}
}
