// Quantize: the paper's §V future work — "applying finer-level
// optimizations to reduce bitwidth precisions". The example trains the demo
// DroNet, quantizes it to INT8 through the core.Model API (batch-norm
// folding + per-channel weight scales + activation calibration), and
// compares the float32 and INT8 models — both driven through the same
// precision-agnostic interface — on accuracy (held-out scenes), weight
// footprint, and the platform model's predicted throughput for the paper's
// three boards.
//
// Run with:
//
//	go run ./examples/quantize
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/demo"
	"repro/internal/detect"
	"repro/internal/eval"
	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	demo.Banner(os.Stdout, "INT8 quantization (§V future work)")

	const size = 128
	det, _, err := demo.TrainDemoDetector(size, 64, 1200, 47, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("float32 detector trained")

	// Calibrate activation scales on a few fresh scenes, then build the two
	// models behind the one core.Model interface.
	calibScenes := dataset.Generate(demo.SceneConfig(size), 4, 1234)
	calib := make([]*tensor.Tensor, 0, len(calibScenes.Items))
	for _, it := range calibScenes.Items {
		calib = append(calib, it.Image.ToTensor())
	}
	qnet, err := det.QuantizeINT8(calib)
	if err != nil {
		log.Fatal(err)
	}
	precisions := []struct {
		name  string
		model core.Model
	}{
		{"float32", det.Model()},
		{"int8", qnet},
	}
	fmt.Printf("weights: float32 %d bytes -> INT8 %d bytes (%.1fx smaller)\n",
		det.Model().WeightBytes(), qnet.WeightBytes(),
		float64(det.Model().WeightBytes())/float64(qnet.WeightBytes()))

	// Accuracy comparison on held-out scenes, both models driven through the
	// same Model.DetectBatch serving entry point.
	val := dataset.Generate(demo.SceneConfig(size), 12, 4321)
	counters := make([]eval.Counter, len(precisions))
	for _, item := range val.Items {
		truthBoxes := make([]detect.Box, len(item.Truths))
		for i, t := range item.Truths {
			truthBoxes[i] = t.Box
		}
		x := item.Image.ToTensor()
		for i, p := range precisions {
			per, err := p.model.DetectBatch(x, det.Thresh, det.NMSThresh)
			if err != nil {
				log.Fatal(err)
			}
			counters[i].AddImage(per[0], truthBoxes)
		}
	}
	fmt.Println("\nheld-out accuracy:")
	for i, p := range precisions {
		fmt.Printf("  %-8s %v\n", p.name+":", counters[i].Metrics(0))
	}

	// Platform-model throughput for the full-size DroNet, float vs INT8.
	full, err := core.NewDetector(models.DroNet, 512, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted full DroNet@512 throughput (platform model):")
	for _, p := range platform.All() {
		f := p.Predict(full.Net).FPS
		q := quant.PredictFPS(p, full.Net)
		fmt.Printf("  %-28s float32 %6.2f FPS -> INT8 %6.2f FPS (%.2fx)\n", p.Name, f, q, q/f)
	}
}
