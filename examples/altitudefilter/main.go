// Altitude filter: the application-level optimization of §III.D. When the
// UAV knows its altitude, the plausible on-image vehicle size is bounded,
// and detections outside that band are discarded as false positives. The
// example lowers the detector threshold to let spurious boxes through, then
// shows the size gate recovering precision without losing recall.
//
// Run with:
//
//	go run ./examples/altitudefilter
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/demo"
	"repro/internal/detect"
	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	demo.Banner(os.Stdout, "altitude-gated detection (§III.D)")

	const size = 128
	det, _, err := demo.TrainDemoDetector(size, 64, 1200, 31, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Deliberately permissive threshold: more recall, more false alarms.
	det.Thresh = 0.08

	gate := detect.NewVehicleAltitudeFilter()
	val := dataset.Generate(demo.SceneConfig(size), 10, 777)

	var plain, gated eval.Counter
	for _, item := range val.Items {
		dets, err := det.DetectImage(item.Image)
		if err != nil {
			log.Fatal(err)
		}
		truthBoxes := make([]detect.Box, len(item.Truths))
		for i, t := range item.Truths {
			truthBoxes[i] = t.Box
		}
		plain.AddImage(dets, truthBoxes)

		kept, err := gate.Apply(dets, item.Altitude)
		if err != nil {
			log.Fatal(err)
		}
		gated.AddImage(kept, truthBoxes)
	}

	lo, hi, err := gate.SizeRange(val.Items[0].Altitude)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %.0f m altitude, plausible vehicle size is %.3f-%.3f of image width\n\n",
		val.Items[0].Altitude, lo, hi)
	fmt.Println("without altitude gate:", plain.Metrics(0))
	fmt.Println("with altitude gate:   ", gated.Metrics(0))
	fmt.Printf("\nfalse positives: %d -> %d (true positives %d -> %d)\n",
		plain.FP, gated.FP, plain.TP, gated.TP)
}
