// Emergency response: the search-and-rescue use case from the paper's
// introduction. The UAV surveys a wide area that exceeds the network input,
// so the frame is swept in overlapping tiles; per-tile detections are
// merged with global NMS and reported as ground coordinates (metres from
// the area's north-west corner) computed from the UAV altitude — the
// information an emergency team actually needs.
//
// Run with:
//
//	go run ./examples/emergencyresponse
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/demo"
	"repro/internal/detect"
	"repro/internal/geo"
)

func main() {
	log.SetFlags(0)
	demo.Banner(os.Stdout, "UAV emergency-response area sweep")

	const tile = 128 // network input size
	det, _, err := demo.TrainDemoDetector(tile, 64, 1200, 23, nil)
	if err != nil {
		log.Fatal(err)
	}

	// A survey frame twice the tile size: 256x256 px of terrain.
	cfg := demo.SceneConfig(256)
	cfg.VehiclesMin, cfg.VehiclesMax = 3, 7
	scene := dataset.Generate(cfg, 1, 555).Items[0]
	img := scene.Image
	fmt.Printf("survey frame %dx%d px at altitude %.0f m, %d vehicles present\n",
		img.W, img.H, scene.Altitude, len(scene.Truths))

	// Sweep with 50% overlap so vehicles cut by a tile border are still
	// seen whole by a neighbouring tile.
	const step = tile / 2
	var all []detect.Detection
	tiles := 0
	for y := 0; y+tile <= img.H; y += step {
		for x := 0; x+tile <= img.W; x += step {
			crop := img.Crop(x, y, tile, tile)
			dets, err := det.DetectImage(crop)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range dets {
				// Map the tile-normalized box back into frame coordinates.
				b := d.Box
				b.X = (b.X*tile + float64(x)) / float64(img.W)
				b.Y = (b.Y*tile + float64(y)) / float64(img.H)
				b.W = b.W * tile / float64(img.W)
				b.H = b.H * tile / float64(img.H)
				d.Box = b
				all = append(all, d)
			}
			tiles++
		}
	}
	merged := detect.NMS(all, 0.4)
	fmt.Printf("swept %d tiles, %d raw detections, %d after merging\n", tiles, len(all), len(merged))

	// Ground coordinates from the camera model at this altitude.
	cam := geo.DefaultUAVCamera()
	localized, err := cam.Localize(merged, scene.Altitude)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvehicles found (metres from NW corner):")
	for i, l := range localized {
		fmt.Printf("  #%d  east %5.1f m, south %5.1f m, %.1fx%.1f m  (confidence %.2f)\n",
			i+1, l.Position.East, l.Position.South, l.WidthM, l.HeightM, l.Detection.Score)
	}

	// How many of the real vehicles did the sweep find?
	found := 0
	for _, t := range scene.Truths {
		for _, d := range merged {
			if detect.IoU(t.Box, d.Box) >= 0.5 {
				found++
				break
			}
		}
	}
	fmt.Printf("\nsearch recall: %d/%d vehicles located\n", found, len(scene.Truths))

	annotated := img.Clone()
	for _, d := range merged {
		annotated.DrawBox(d.Box, 1, 0.9, 0.1, 0.1)
	}
	const out = "emergency_sweep.png"
	if err := annotated.SavePNG(out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotated survey frame written to", out)
}
