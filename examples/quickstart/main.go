// Quickstart: the smallest end-to-end use of the DroNet library.
//
// It generates a synthetic aerial scene, trains a scaled DroNet on similar
// scenes for a few hundred batches (seconds on a laptop), detects the
// vehicles in the held-out scene, reports accuracy against the exact ground
// truth, and writes an annotated PNG.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/demo"
	"repro/internal/detect"
	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	demo.Banner(os.Stdout, "DroNet quickstart: train, detect, annotate")

	const size = 128
	det, _, err := demo.TrainDemoDetector(size, 64, 1200, 7, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmodel:")
	fmt.Println(det.Summary())

	// A fresh scene the detector has never seen.
	scene := dataset.Generate(demo.SceneConfig(size), 1, 999).Items[0]
	dets, err := det.DetectImage(scene.Image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d vehicles (ground truth: %d) at altitude %.0f m\n",
		len(dets), len(scene.Truths), scene.Altitude)

	var counter eval.Counter
	truthBoxes := make([]detect.Box, len(scene.Truths))
	for i, t := range scene.Truths {
		truthBoxes[i] = t.Box
	}
	counter.AddImage(dets, truthBoxes)
	fmt.Println("scene metrics:", counter.Metrics(0))

	annotated := scene.Image.Clone()
	for _, t := range scene.Truths {
		annotated.DrawBox(t.Box, 1, 0.1, 0.9, 0.1) // green: ground truth
	}
	for _, d := range dets {
		annotated.DrawBox(d.Box, 1, 0.9, 0.1, 0.1) // red: detections
	}
	const out = "quickstart_detections.png"
	if err := annotated.SavePNG(out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotated image written to", out)
}
