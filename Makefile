GO ?= go

.PHONY: ci vet build test race bench fuzz fleet

## ci: the full tier-1 + hygiene gate (what .github/workflows/ci.yml runs)
ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one-iteration smoke pass over every benchmark (catches bit-rot,
## not performance; use `go test -bench . -benchtime 1s` for real numbers)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## fuzz: short bounded fuzz pass over the detect invariants
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzIoU -fuzztime 30s ./internal/detect
	$(GO) test -run '^$$' -fuzz FuzzNMS -fuzztime 30s ./internal/detect

## fleet: demo the multi-stream engine with a serial-vs-parallel comparison
fleet:
	$(GO) run ./cmd/dronet-fleet -streams 4 -workers 4 -frames 50 -compare
