GO ?= go

.PHONY: ci vet build test race bench bench-smoke serve-bench serve-smoke swap-smoke shard-smoke stream-smoke stream-soak chaos fuzz fleet serve profile

## ci: the full tier-1 + hygiene gate (what .github/workflows/ci.yml's main
## job runs step by step); bench-smoke runs the GEMM kernels a few iterations
## so a kernel regression (or an asm/portable divergence) breaks CI loudly,
## not just slowly. Deliberately NOT `bench`: that regenerates (and dirties)
## the committed BENCH_serve.json, which is a release chore, not a gate.
ci: vet build race chaos bench-smoke serve-smoke swap-smoke shard-smoke stream-smoke

## bench-smoke: quick kernel-level regression tripwire over the packed GEMM
## benchmarks (10 iterations — catches crashes and gross slowdowns cheaply);
## the -run leg prints the dispatch report and asserts the selected family is
## avx2 on AVX2-capable boxes (TestSelectedKernel skips elsewhere), so a
## silent fall-back to the SSE2 kernels breaks CI instead of just perf
bench-smoke:
	$(GO) test -run 'TestKernelDispatchInfo|TestSelectedKernel' -v -bench Gemm -benchtime 10x ./internal/tensor/

## vet: static analysis plus the gofmt cleanliness gate — unformatted files
## fail the build with their names listed
vet:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
	    echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the race leg also shuffles test execution order so the lifecycle
## suite can't hide an ordering dependency behind source order
race:
	$(GO) test -race -shuffle=on ./...

## bench: one-iteration smoke pass over every benchmark (catches bit-rot,
## not performance; use `go test -bench . -benchtime 1s` for real numbers),
## then the serving throughput run that regenerates the extended fp32+int8
## BENCH_serve.json
bench: serve-bench
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## serve-bench: drive the micro-batching service with concurrent synthetic
## clients — once at fp32, once at int8 — and write BENCH_serve.json (agg
## FPS per precision, p50/p99 latency, batch-size histogram, and the
## fp32-vs-int8 detection-agreement score) so the serving perf trajectory is
## tracked per-commit; the proxy leg then spawns a two-shard fleet and
## merges the "sharded" section (client throughput, fleet rollup, per-shard
## balance) into the same report
serve-bench:
	$(GO) run ./cmd/dronet-serve -selfbench -size 96 -scale 0.25 -workers 2 \
	    -bench-clients 8 -bench-requests 25 -bench-out BENCH_serve.json \
	    -models "low=dronet:64:int8:150,high=dronet:96:fp32"
	$(GO) build -o bin/dronet-serve ./cmd/dronet-serve
	$(GO) run ./cmd/dronet-proxy -selfbench -spawn 2 -serve-bin bin/dronet-serve \
	    -size 96 -scale 0.25 -workers 2 -bench-cameras 12 -bench-requests 25 \
	    -bench-out BENCH_serve.json

## serve-smoke: boot the real dronet-serve binary on a random port — once per
## precision (fp32, then -precision int8 with startup calibration), then once
## as a routed two-model registry — POST a synthetic frame to every endpoint,
## assert 200s with well-formed detection JSON, the right precision label and
## the routing matrix (explicit/altitude/404), then SIGTERM-drain it
## (examples/serveclient is the driver)
serve-smoke:
	$(GO) build -o bin/dronet-serve ./cmd/dronet-serve
	$(GO) run ./examples/serveclient -server bin/dronet-serve
	$(GO) run ./examples/serveclient -server bin/dronet-serve -precision int8
	$(GO) run ./examples/serveclient -server bin/dronet-serve \
	    -models "low=dronet:64:int8:150,high=dronet:96:fp32"

## swap-smoke: boot the real dronet-serve binary with its admin listener and
## exercise the live model lifecycle — hot add, two atomic weight swaps (one
## on the pool carrying background traffic), remove — asserting the data
## plane never returns anything but 200/429 (examples/serveclient -swap is
## the driver)
swap-smoke:
	$(GO) build -o bin/dronet-serve ./cmd/dronet-serve
	$(GO) run ./examples/serveclient -server bin/dronet-serve -size 64 -swap
	$(GO) run ./examples/serveclient -server bin/dronet-serve -size 64 -swap \
	    -models "low=dronet:64:int8:150,high=dronet:96:fp32::2"

## shard-smoke: boot two real dronet-serve shard processes behind a real
## dronet-proxy and walk the sharded tier — camera affinity, fleet metrics
## aggregation with shard identity labels, then kill -9 one shard under
## traffic asserting only 200/429/503, ejection and failover to the
## survivor (examples/serveclient -sharded is the driver)
shard-smoke:
	$(GO) build -o bin/dronet-serve ./cmd/dronet-serve
	$(GO) build -o bin/dronet-proxy ./cmd/dronet-proxy
	$(GO) run ./examples/serveclient -sharded -server bin/dronet-serve \
	    -proxy bin/dronet-proxy -size 96

## stream-smoke: boot the real dronet-serve binary and walk the WebSocket
## session lifecycle end to end — hello, in-order results with per-session
## tracker state, the max-sessions 503 + Retry-After, in-band bad-frame
## errors, idle eviction (bye "idle") and the SIGTERM drain (bye "drain");
## the -sharded leg then puts two real shards behind a real dronet-proxy
## and asserts camera-affine placement plus the failover resume: draining
## the owner shard mid-session must yield a resumed:true marker on the
## survivor and a fresh tracker (examples/streamclient is the driver)
stream-smoke:
	$(GO) build -o bin/dronet-serve ./cmd/dronet-serve
	$(GO) build -o bin/dronet-proxy ./cmd/dronet-proxy
	$(GO) run ./examples/streamclient -server bin/dronet-serve
	$(GO) run ./examples/streamclient -sharded -server bin/dronet-serve \
	    -proxy bin/dronet-proxy

## stream-soak: the long-running streaming churn test (nightly CI): 16
## session clients over a 12-session budget cycling normal/idle-out/
## abrupt-disconnect/graceful modes under the race detector, asserting the
## session gauge returns to zero and no goroutines leak. SOAK tunes the
## duration (TestStreamSoak skips entirely when DRONET_SOAK is unset).
SOAK ?= 30s
stream-soak:
	DRONET_SOAK=$(SOAK) $(GO) test -race -run TestStreamSoak -v ./internal/serve/

## chaos: the fault-injection resilience suite under the race detector —
## breaker unit lifecycle, chaos against a faulted shard (breaker opens,
## half-open probe recovers it), retry-budget exhaustion, end-to-end
## deadline propagation, the deadline storm that must never reach a kernel
## (pinned by the batch-histogram accounting identity), expired-on-arrival
## 504s, brownout degrade/recover, and goroutine hygiene after Close on
## both the server and the proxy
chaos:
	$(GO) test -race -run 'TestBreaker|TestChaos|TestProxyDeadline|TestDeadline|TestExpired|TestBrownout|GoroutineHygiene' \
	    ./internal/serve/ ./internal/cluster/

## fuzz: short bounded fuzz pass over the detect, kernel, quantization and
## spec-grammar invariants (FuzzGemmPackedVsNaive cross-checks the packed
## cache-blocked GEMM against the naive loops across EVERY registered
## microkernel family — avx2/sse2/portable: exact for int8, <=1e-4 relative
## for fp32; the leading dispatch-info run logs which families this box
## detected so fuzz logs are attributable; FuzzParseModelSpecs holds -models
## parsing to a no-panic + parse/format/parse fixed-point contract). FUZZTIME
## tunes the per-target budget (CI's parallel fuzz job uses 15s).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run TestKernelDispatchInfo -v ./internal/tensor
	$(GO) test -run '^$$' -fuzz FuzzIoU -fuzztime $(FUZZTIME) ./internal/detect
	$(GO) test -run '^$$' -fuzz FuzzNMS -fuzztime $(FUZZTIME) ./internal/detect
	$(GO) test -run '^$$' -fuzz FuzzGemmPackedVsNaive -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz FuzzIm2colInt8 -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz FuzzQuantDequant -fuzztime $(FUZZTIME) ./internal/quant
	$(GO) test -run '^$$' -fuzz FuzzParseModelSpecs -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzRingOwnership -fuzztime $(FUZZTIME) ./internal/cluster

## profile: run the serving selfbench with CPU + heap pprof capture; inspect
## with `go tool pprof bin/pprof/cpu.pprof` (see README "Profiling")
profile:
	mkdir -p bin/pprof
	$(GO) run ./cmd/dronet-serve -selfbench -size 96 -scale 0.25 -workers 2 \
	    -bench-clients 8 -bench-requests 25 -bench-out bin/pprof/BENCH_serve.json \
	    -cpuprofile bin/pprof/cpu.pprof -memprofile bin/pprof/heap.pprof

## fleet: demo the multi-stream engine with a serial-vs-parallel comparison
fleet:
	$(GO) run ./cmd/dronet-fleet -streams 4 -workers 4 -frames 50 -compare

## serve: run the detection service locally with the default knobs
serve:
	$(GO) run ./cmd/dronet-serve -addr :8080 -size 128 -scale 0.5
