// Package repro is a from-scratch Go reproduction of "DroNet: Efficient
// Convolutional Neural Network Detector for Real-Time UAV Applications"
// (Kyrkou et al., DATE 2018): a Darknet-style CNN framework, the paper's
// four detector architectures, a synthetic aerial-vehicle dataset, the
// evaluation metrics, and calibrated platform models for the paper's three
// deployment targets. See README.md for the layout and EXPERIMENTS.md for
// the paper-vs-measured results.
package repro
