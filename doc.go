// Package repro is a from-scratch Go reproduction of "DroNet: Efficient
// Convolutional Neural Network Detector for Real-Time UAV Applications"
// (Kyrkou et al., DATE 2018): a Darknet-style CNN framework, the paper's
// four detector architectures, a synthetic aerial-vehicle dataset, the
// evaluation metrics, and calibrated platform models for the paper's three
// deployment targets. See README.md for the layout and EXPERIMENTS.md for
// the paper-vs-measured results.
//
// Beyond the paper's single-camera loop, internal/engine scales one trained
// detector to many concurrent camera streams: layers separate shared
// read-only weights from per-instance workspace, Network.CloneForInference
// produces weight-sharing replicas, and a worker pool fans streams across
// replicas with per-stream and fleet-wide statistics (cmd/dronet-fleet,
// examples/multicamera).
//
// On top of the engine, internal/serve exposes the detector as an HTTP
// service (cmd/dronet-serve, examples/serveclient): concurrent requests
// pass a bounded admission queue (429 on overload) and are coalesced into
// dynamic micro-batches — one N-image batched Forward per batch, with
// per-image detections byte-identical to single-image inference — with
// /metrics reporting latency percentiles, batch-size histogram and
// aggregate FPS, and context-based cancellation draining in-flight work on
// shutdown.
package repro
