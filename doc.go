// Package repro is a from-scratch Go reproduction of "DroNet: Efficient
// Convolutional Neural Network Detector for Real-Time UAV Applications"
// (Kyrkou et al., DATE 2018): a Darknet-style CNN framework, the paper's
// four detector architectures, a synthetic aerial-vehicle dataset, the
// evaluation metrics, and calibrated platform models for the paper's three
// deployment targets. See README.md for the layout and EXPERIMENTS.md for
// the paper-vs-measured results.
//
// Beyond the paper's single-camera loop, internal/engine scales one trained
// detector to many concurrent camera streams: layers separate shared
// read-only weights from per-instance workspace, Network.CloneForInference
// produces weight-sharing replicas, and a worker pool fans streams across
// replicas with per-stream and fleet-wide statistics (cmd/dronet-fleet,
// examples/multicamera).
//
// On top of the engine, internal/serve exposes detectors as an HTTP
// service (cmd/dronet-serve, examples/serveclient): the server hosts a
// routed registry of named models — any mix of precisions and input sizes,
// one engine replica pool, bounded admission queue (429 on overload) and
// micro-batcher per model (engine.Group tracks the pools) — and routes
// each request by explicit ?model=/X-Model selection, else by altitude
// band (the paper's operating-scenario trade-off: small fast model low,
// larger model high), else to the default. Admitted requests are coalesced
// into dynamic micro-batches — one N-image batched Forward per batch, with
// per-image detections byte-identical to single-image inference — with
// /metrics reporting latency percentiles, batch-size histogram and
// aggregate FPS per model plus fleet-wide, and one drain fencing every
// pool on shutdown.
//
// The stack is precision-agnostic: engine, pipeline and serve all operate
// on the core.Model interface (ForwardBatch, DetectBatch, CloneForInference,
// InShape/OutShape, WeightBytes), implemented by the float32
// network.Network and the INT8 quant.QNet alike. dronet-serve's -precision
// knob selects the deployed bit-width (the paper's §V future work): int8
// serving quantizes post-training at startup — batch-norm folding,
// per-channel weight scales, activation scales calibrated on sample frames
// — and runs batched int8 inference (int8 im2col + tensor.GemmInt8 with
// exact int32 accumulation) through the identical micro-batching path,
// labelling /metrics with the active precision; BENCH_serve.json reports
// fp32 and int8 aggregate FPS plus their detection-agreement score side by
// side.
//
// Both precisions lower convolution onto one packed cache-blocked GEMM
// (internal/tensor): BLIS-style MR×KC / KC×NR panel packing feeding a 4×8
// register-blocked microkernel (SSE2 assembly on amd64, portable Go
// elsewhere), parallel across row strips and column panels with a tile
// decomposition independent of the worker count. The int8 kernel
// accumulates exactly in int32 over packed int16 pairs and requantizes on
// store, so its results are blocking- and concurrency-invariant. The
// steady-state serving path is allocation-free: each model replica owns a
// grow-once scratch arena (tensor.Arena) for its transient per-forward
// buffers, reset at the start of every pass.
package repro
